"""The verifier portfolio: first-class GED backends behind one protocol.

The join's verification stage historically selected its exact-GED
engine by string (``verifier="compiled"|"object"|"astar"|"dfs"``), and
every driver re-encoded the capability rules — which backends honour a
:class:`~repro.runtime.budget.VerificationBudget`, which support the
anchor bound, which need the compilation cache — as scattered
special-cases.  This module makes the backends first-class:

* :class:`BackendCapabilities` declares, per backend, whether budgets /
  bounded verdicts / the anchor bound are supported, the search's
  memory profile, and whether it runs over
  :class:`~repro.ged.compiled.CompiledGraph` arrays;
* :class:`VerifierBackend` is the uniform surface — ``verify(r, s,
  tau, budget) -> GedSearchResult`` — every backend implements;
* a process-wide **registry** maps names (and aliases) to backend
  singletons; :func:`resolve_backend` is the single place an unknown
  verifier string is rejected, and :func:`validate_backend_options` is
  the single capability check, naming the offending backend *and* its
  declared capabilities;
* :class:`AutoBackend` (``verifier="auto"``) is a per-pair hardness
  dispatcher: a pure, deterministic function of the pair's sizes, the
  threshold and the label-multiset diversity picks the concrete
  backend, so parallel and sharded runs agree with sequential ones
  bit-for-bit.

Hardness model (why the dispatcher is shaped this way): the A* keeps a
best-first frontier whose size explodes exactly when the label bound is
uninformative — large graphs over few distinct labels at a loose
threshold leave ``Γ(L_V) + Γ(L_E)`` near zero, so A* ties everywhere
and the open list grows combinatorially, while the DFS branch-and-bound
(*Fast Computation of Graph Edit Distance*, PAPERS.md) holds one path
and leans on its bipartite incumbent.  Small or label-diverse pairs at
tight thresholds are the opposite: the heuristic is sharp, A* expands a
handful of states, and the DFS's eagerness wastes work.  The default
thresholds below were calibrated on the mixed-hardness row of
``benchmarks/bench_ged_trajectory.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.ged.astar import GedSearchResult, graph_edit_distance_detailed
from repro.ged.compiled import VerificationCache, compiled_ged_detailed
from repro.ged.heuristics import label_heuristic, make_local_label_heuristic
from repro.graph.graph import Graph, Vertex
from repro.runtime.budget import VerificationBudget

__all__ = [
    "BackendCapabilities",
    "VerifierBackend",
    "ObjectAStarBackend",
    "CompiledAStarBackend",
    "DfsBackend",
    "AutoBackend",
    "register_backend",
    "resolve_backend",
    "registered_backends",
    "registered_names",
    "budgeted_backends",
    "validate_backend_options",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What one verifier backend declares it can do.

    ``memory_profile`` is descriptive (``"frontier"`` for best-first
    searches holding an open list, ``"constant"`` for path-only
    branch-and-bound); ``uses_compiled_cache`` tells the drivers the
    backend profits from a shared :class:`VerificationCache` (every
    driver now creates one unconditionally, but the flag still feeds
    the capability table in ``docs/ARCHITECTURE.md`` and the
    registry-driven error messages).
    """

    supports_budget: bool
    supports_bounded_verdicts: bool
    supports_anchor_bound: bool
    memory_profile: str
    uses_compiled_cache: bool

    def describe(self) -> str:
        """One-line rendering for error messages and plan output."""
        flags = [
            f"budget={'yes' if self.supports_budget else 'no'}",
            f"bounded_verdicts={'yes' if self.supports_bounded_verdicts else 'no'}",
            f"anchor_bound={'yes' if self.supports_anchor_bound else 'no'}",
            f"memory={self.memory_profile}",
        ]
        return ", ".join(flags)


class VerifierBackend:
    """Base of every portfolio backend (register instances, not classes).

    Subclasses set ``name`` (the canonical registry key), optional
    ``aliases``, and ``capabilities``, and implement :meth:`verify`.
    :meth:`select` exists for dispatchers: concrete backends return
    themselves, :class:`AutoBackend` returns the backend its hardness
    model picks for the pair — callers always invoke
    ``backend.select(...).verify(...)`` so the dispatch point is
    uniform.
    """

    name: str = ""
    aliases: Tuple[str, ...] = ()
    capabilities: BackendCapabilities

    def verify(
        self,
        r: Graph,
        s: Graph,
        tau: int,
        budget: Optional[VerificationBudget] = None,
        *,
        order: Optional[Sequence[Vertex]] = None,
        improved_h: bool = False,
        q: int = 0,
        cache: Optional[VerificationCache] = None,
        anchor_bound: bool = False,
    ) -> GedSearchResult:
        """Decide ``ged(r, s) <= tau`` (exactly, or bounded under budget).

        Returns a :class:`~repro.ged.astar.GedSearchResult`:
        ``distance <= tau`` accepts, ``tau + 1`` rejects, and a
        budget-exhausted run carries a ``lower <= ged <= upper``
        bracket.  ``order`` is the mapping order over ``V(r)`` (object
        vertices; compiled backends translate internally).
        """
        raise NotImplementedError

    def select(
        self,
        r: Graph,
        s: Graph,
        tau: int,
        labels_r: Optional[Tuple] = None,
        labels_s: Optional[Tuple] = None,
    ) -> "VerifierBackend":
        """The concrete backend to run for this pair (self, by default)."""
        return self


def _compile_pair(
    r: Graph, s: Graph, cache: Optional[VerificationCache],
    order: Optional[Sequence[Vertex]],
):
    """Compile both graphs (ad hoc cache when none is shared) and
    translate the object-vertex order to dense indices."""
    if cache is None:
        cache = VerificationCache()
    cr = cache.compile(r)
    cs = cache.compile(s)
    int_order = (
        None if order is None else [cr.index_of[v] for v in order]
    )
    return cr, cs, int_order, cache


class ObjectAStarBackend(VerifierBackend):
    """The object-graph A* reference (:mod:`repro.ged.astar`)."""

    name = "object"
    aliases = ("astar",)
    capabilities = BackendCapabilities(
        supports_budget=True,
        supports_bounded_verdicts=True,
        supports_anchor_bound=False,
        memory_profile="frontier",
        uses_compiled_cache=False,
    )

    def verify(
        self,
        r: Graph,
        s: Graph,
        tau: int,
        budget: Optional[VerificationBudget] = None,
        *,
        order: Optional[Sequence[Vertex]] = None,
        improved_h: bool = False,
        q: int = 0,
        cache: Optional[VerificationCache] = None,
        anchor_bound: bool = False,
    ) -> GedSearchResult:
        heuristic = (
            make_local_label_heuristic(q, tau) if improved_h
            else label_heuristic
        )
        return graph_edit_distance_detailed(
            r, s, threshold=tau, heuristic=heuristic, vertex_order=order,
            budget=budget,
        )


class CompiledAStarBackend(VerifierBackend):
    """The integer-array A* (:mod:`repro.ged.compiled`), bit-identical
    to the object backend and the join's default."""

    name = "compiled"
    aliases = ()
    capabilities = BackendCapabilities(
        supports_budget=True,
        supports_bounded_verdicts=True,
        supports_anchor_bound=True,
        memory_profile="frontier",
        uses_compiled_cache=True,
    )

    def verify(
        self,
        r: Graph,
        s: Graph,
        tau: int,
        budget: Optional[VerificationBudget] = None,
        *,
        order: Optional[Sequence[Vertex]] = None,
        improved_h: bool = False,
        q: int = 0,
        cache: Optional[VerificationCache] = None,
        anchor_bound: bool = False,
    ) -> GedSearchResult:
        cr, cs, int_order, cache = _compile_pair(r, s, cache, order)
        return compiled_ged_detailed(
            cr, cs, threshold=tau, vertex_order=int_order, budget=budget,
            improved_h=improved_h, q=q, h_tau=tau,
            subgraph_cache=cache.subgraph_cache,
            anchor_bound=anchor_bound,
        )


class DfsBackend(VerifierBackend):
    """Depth-first branch-and-bound (:mod:`repro.ged.dfs`), run over
    compiled arrays: constant memory, budget-aware bounded verdicts."""

    name = "dfs"
    aliases = ()
    capabilities = BackendCapabilities(
        supports_budget=True,
        supports_bounded_verdicts=True,
        supports_anchor_bound=False,
        memory_profile="constant",
        uses_compiled_cache=True,
    )

    def verify(
        self,
        r: Graph,
        s: Graph,
        tau: int,
        budget: Optional[VerificationBudget] = None,
        *,
        order: Optional[Sequence[Vertex]] = None,
        improved_h: bool = False,
        q: int = 0,
        cache: Optional[VerificationCache] = None,
        anchor_bound: bool = False,
    ) -> GedSearchResult:
        from repro.ged.dfs import dfs_ged_compiled

        cr, cs, int_order, cache = _compile_pair(r, s, cache, order)
        return dfs_ged_compiled(
            cr, cs, threshold=tau, vertex_order=int_order, budget=budget,
            improved_h=improved_h, q=q, h_tau=tau,
            subgraph_cache=cache.subgraph_cache,
        )


#: Dispatcher thresholds (see the module docstring's hardness model).
#: A pair is "hard" — DFS territory — when it is at least this large ...
AUTO_MIN_VERTICES = 8
#: ... the threshold at least this loose ...
AUTO_MIN_TAU = 2
#: ... and its label diversity (distinct vertex labels across both
#: graphs) at most this low, starving the A* label heuristic.
AUTO_MAX_DISTINCT_LABELS = 2


class AutoBackend(VerifierBackend):
    """Per-pair hardness dispatcher (``verifier="auto"``).

    :meth:`select` is a pure function of ``(sizes, tau, vertex-label
    diversity)`` — no timing, no randomness — so every execution mode
    (sequential, parallel workers, sharded drains, journal replay)
    dispatches identically and result parity is structural.  The
    declared capabilities are the *intersection* of the dispatch
    targets' capabilities: budgets are fine (both targets bound them),
    the anchor bound is not (the DFS target has no anchor pruning).
    """

    name = "auto"
    aliases = ()
    capabilities = BackendCapabilities(
        supports_budget=True,
        supports_bounded_verdicts=True,
        supports_anchor_bound=False,
        memory_profile="adaptive",
        uses_compiled_cache=True,
    )

    def verify(
        self,
        r: Graph,
        s: Graph,
        tau: int,
        budget: Optional[VerificationBudget] = None,
        *,
        order: Optional[Sequence[Vertex]] = None,
        improved_h: bool = False,
        q: int = 0,
        cache: Optional[VerificationCache] = None,
        anchor_bound: bool = False,
    ) -> GedSearchResult:
        return self.select(r, s, tau).verify(
            r, s, tau, budget, order=order, improved_h=improved_h, q=q,
            cache=cache, anchor_bound=anchor_bound,
        )

    def select(
        self,
        r: Graph,
        s: Graph,
        tau: int,
        labels_r: Optional[Tuple] = None,
        labels_s: Optional[Tuple] = None,
    ) -> VerifierBackend:
        """Pick ``dfs`` for hard pairs, ``compiled`` otherwise.

        ``labels_r``/``labels_s`` are the pair-cascade's precomputed
        ``(vertex_counter, edge_counter)`` multisets when the caller has
        them (the engine always does); label diversity falls back to a
        direct scan for standalone use.
        """
        if max(r.num_vertices, s.num_vertices) < AUTO_MIN_VERTICES:
            return _COMPILED
        if tau < AUTO_MIN_TAU:
            return _COMPILED
        if labels_r is not None and labels_s is not None:
            distinct = len(set(labels_r[0]) | set(labels_s[0]))
        else:
            distinct = len(
                {r.vertex_label(v) for v in r.vertices()}
                | {s.vertex_label(v) for v in s.vertices()}
            )
        if distinct <= AUTO_MAX_DISTINCT_LABELS:
            return _DFS
        return _COMPILED


# --------------------------------------------------------------- registry

_REGISTRY: Dict[str, VerifierBackend] = {}


def register_backend(backend: VerifierBackend) -> VerifierBackend:
    """Register ``backend`` under its name and every alias.

    Later registrations win — tests and experiments may shadow a
    built-in backend for the lifetime of the process.
    """
    for key in (backend.name,) + tuple(backend.aliases):
        _REGISTRY[key] = backend
    return backend


def resolve_backend(name: str) -> VerifierBackend:
    """The backend registered under ``name`` (or an alias).

    Raises
    ------
    ParameterError
        Naming the unknown verifier and listing the registered ones.
    """
    backend = _REGISTRY.get(name)
    if backend is None:
        known = sorted({b.name for b in _REGISTRY.values()})
        raise ParameterError(
            f"unknown verifier {name!r} (registered backends: "
            f"{', '.join(known)})"
        )
    return backend


def registered_backends() -> List[VerifierBackend]:
    """The distinct registered backends, sorted by canonical name."""
    seen: Dict[str, VerifierBackend] = {}
    for backend in _REGISTRY.values():
        seen.setdefault(backend.name, backend)
    return [seen[name] for name in sorted(seen)]


def registered_names() -> List[str]:
    """Every registry key (canonical names and aliases), sorted."""
    return sorted(_REGISTRY)


def budgeted_backends() -> frozenset:
    """Every registry key whose backend honours a budget."""
    return frozenset(
        key for key, backend in _REGISTRY.items()
        if backend.capabilities.supports_budget
    )


def validate_backend_options(
    verifier: str,
    budget: Optional[VerificationBudget] = None,
    anchor_bound: bool = False,
) -> VerifierBackend:
    """Resolve ``verifier`` and check the requested features against its
    declared capabilities — the single capability gate every driver
    (options validation, sequential/parallel/sharded joins, the index)
    goes through.

    Raises
    ------
    ParameterError
        On an unknown verifier, or when ``budget``/``anchor_bound`` is
        requested from a backend whose capabilities exclude it; the
        message names the backend and its capability declaration.
    """
    backend = resolve_backend(verifier)
    caps = backend.capabilities
    if budget is not None and not caps.supports_budget:
        raise ParameterError(
            f"verifier {backend.name!r} does not support budgeted "
            f"verification (declared capabilities: {caps.describe()})"
        )
    if anchor_bound and not caps.supports_anchor_bound:
        raise ParameterError(
            f"anchor_bound requires a backend with anchor-bound support; "
            f"verifier {backend.name!r} declares: {caps.describe()} "
            f"(use the 'compiled' verifier)"
        )
    return backend


_OBJECT = register_backend(ObjectAStarBackend())
_COMPILED = register_backend(CompiledAStarBackend())
_DFS = register_backend(DfsBackend())
_AUTO = register_backend(AutoBackend())
