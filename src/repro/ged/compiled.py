"""Compiled integer-array A* verification backend (Section VI-B, fast path).

The object-graph A* in :mod:`repro.ged.astar` re-walks Python
dict-of-dict adjacency on every state expansion and recomputes the
remaining-label heuristic from scratch with fresh ``Counter`` objects
per generated state.  This module removes all of that by *compiling*
each :class:`~repro.graph.graph.Graph` once per join into a
:class:`CompiledGraph` — dense ``0..n-1`` vertex ids, interned integer
vertex/edge-label ids (the same interning pattern as
:mod:`repro.grams.vocab`), a flattened adjacency matrix for O(1)
integer edge lookups, incidence lists, and precomputed label-multiset
count arrays — and running a rewritten A* core over those arrays:

* states are compact tuples over ints (mapping tuple + used bitmask),
  with no per-state ``frozenset`` or ``Counter`` construction;
* the remaining-label heuristic ``Γ(L_V) + Γ(L_E)`` is maintained
  **incrementally**: the ``r``-side remainder depends only on the
  search depth (tables built once per search), the ``s``-side is
  rebuilt per expansion from the used bitmask, and each child applies
  O(deg) do/undo counter deltas instead of re-deriving the bound;
* the completion cost of the unmatched part of ``s`` falls out of the
  same remainder sizes for free;
* the gated local-label term of the improved heuristic (Algorithm 8)
  delegates to :func:`repro.ged.heuristics.local_label_terms` — the
  exact code the object backend runs — and additionally memoizes the
  value per ``(depth, used)`` remainder pair, which is sound because
  the term is a pure function of the two remainders.

Compilation is cached per graph in a :class:`VerificationCache` shared
across all candidate pairs of a join (each graph appears in many
pairs), together with the label interners and the subgraph-profile
memo of the gated heuristic term.

**Bit-identical contract.**  With ``anchor_bound=False`` (the default)
the backend reproduces the object A* exactly: identical distances,
``exceeded_threshold`` decisions, expansion/generation counts, and —
under a :class:`~repro.runtime.budget.VerificationBudget` — identical
``lower``/``upper`` bounded verdicts, because states carry identical
``f`` values and are generated in the same order with the same
tie-breaking.  The optional anchor-aware bound (:func:`_anchor_bound`)
tightens pruning and may reduce expansions; distances never change.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError, SearchExhaustedError
from repro.ged.astar import GedSearchResult
from repro.ged.heuristics import local_label_terms
from repro.graph.graph import Graph, Vertex
from repro.runtime.budget import VerificationBudget

__all__ = [
    "LabelInterner",
    "CompiledGraph",
    "VerificationCache",
    "compile_graph",
    "compiled_ged_detailed",
]


class LabelInterner:
    """Dense integer ids for (vertex or edge) labels, first-seen order.

    The id order carries no meaning — unlike the q-gram vocabulary's
    rank-ordered ids — so interning is a plain first-come assignment.
    One interner is shared by every graph compiled through the same
    :class:`VerificationCache`, making label ids comparable across all
    candidate pairs of a join.
    """

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}

    def intern(self, label: Hashable) -> int:
        """Id of ``label``, assigning the next dense id when unseen."""
        label_id = self._ids.get(label)
        if label_id is None:
            label_id = len(self._ids)
            self._ids[label] = label_id
        return label_id

    def __len__(self) -> int:
        return len(self._ids)


class CompiledGraph:
    """One graph compiled to integer arrays for the A* inner loop.

    Vertices are renumbered to dense ``0..n-1`` ids in insertion order
    (matching :meth:`Graph.vertices`), labels are interned ints, and
    adjacency is a flattened ``n*n`` row-major matrix whose cells hold
    ``edge_label_id + 1`` (``0`` = no edge) so existence *and* label
    tests are one integer index each.  ``incident[v]`` lists every edge
    touching ``v`` as ``(other_endpoint, edge_label_id)`` — both
    orientations for directed graphs — for O(deg) resident-edge counter
    deltas.  The original :class:`Graph` is retained (keeping its
    ``id()`` stable for the cache and serving the object-level
    delegation of the gated heuristic term).
    """

    __slots__ = (
        "graph",
        "directed",
        "n",
        "vertices",
        "index_of",
        "vlab",
        "adj",
        "out_nbrs",
        "in_nbrs",
        "incident",
        "edge_list",
        "num_edges",
        "vlab_counts",
        "elab_counts",
        "max_vlab",
        "max_elab",
    )

    def __init__(
        self,
        graph: Graph,
        vertices: List[Vertex],
        vlab: List[int],
        adj: List[int],
        out_nbrs: List[List[int]],
        in_nbrs: List[List[int]],
        incident: List[List[Tuple[int, int]]],
        edge_list: List[Tuple[int, int, int]],
    ) -> None:
        """Assemble a compiled view (use :func:`compile_graph`)."""
        self.graph = graph
        self.directed = graph.is_directed
        self.n = len(vertices)
        self.vertices = vertices
        self.index_of = {v: i for i, v in enumerate(vertices)}
        self.vlab = vlab
        self.adj = adj
        self.out_nbrs = out_nbrs
        self.in_nbrs = in_nbrs
        self.incident = incident
        self.edge_list = edge_list
        self.num_edges = len(edge_list)
        counts: Dict[int, int] = {}
        for label_id in vlab:
            counts[label_id] = counts.get(label_id, 0) + 1
        self.vlab_counts = counts
        ecounts: Dict[int, int] = {}
        for _x, _y, el in edge_list:
            ecounts[el] = ecounts.get(el, 0) + 1
        self.elab_counts = ecounts
        self.max_vlab = max(vlab) if vlab else -1
        self.max_elab = max(ecounts) if ecounts else -1


def compile_graph(
    g: Graph, vertex_labels: LabelInterner, edge_labels: LabelInterner
) -> CompiledGraph:
    """Compile ``g`` against shared label interners.

    O(|V|² + |E|) — the flattened adjacency matrix dominates; join
    graphs are small (tens of vertices) so a full matrix beats sparse
    lookups by a wide margin in CPython.
    """
    vertices = list(g.vertices())
    n = len(vertices)
    index_of = {v: i for i, v in enumerate(vertices)}
    vlab = [vertex_labels.intern(g.vertex_label(v)) for v in vertices]
    adj = [0] * (n * n)
    out_nbrs: List[List[int]] = [[] for _ in range(n)]
    directed = g.is_directed
    in_nbrs: List[List[int]] = [[] for _ in range(n)] if directed else out_nbrs
    incident: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    edge_list: List[Tuple[int, int, int]] = []
    for u, v, label in g.edges():
        x, y = index_of[u], index_of[v]
        el = edge_labels.intern(label)
        adj[x * n + y] = el + 1
        out_nbrs[x].append(y)
        if directed:
            in_nbrs[y].append(x)
        else:
            adj[y * n + x] = el + 1
            out_nbrs[y].append(x)
        incident[x].append((y, el))
        incident[y].append((x, el))
        edge_list.append((x, y, el))
    return CompiledGraph(
        g, vertices, vlab, adj, out_nbrs, in_nbrs, incident, edge_list
    )


class VerificationCache:
    """Per-collection compilation cache shared across candidate pairs.

    Holds the two label interners, the ``id(graph) -> CompiledGraph``
    memo, and the subgraph-profile memo backing the gated local-label
    heuristic term.  **Lifetime rule:** entries are keyed by object
    identity and each :class:`CompiledGraph` retains a reference to its
    source graph, so a cached id can never be recycled while the cache
    lives — but the cache must not outlive the *collection*: create one
    per join run (or one per :class:`~repro.core.search.GSimIndex`,
    whose graphs live as long as the index), and let it die with the
    run.  ``compile_seconds``/``hits``/``misses`` expose the
    compilation overhead for benchmarks.
    """

    __slots__ = (
        "vertex_labels",
        "edge_labels",
        "subgraph_cache",
        "_compiled",
        "compile_seconds",
        "hits",
        "misses",
        "_verdicts",
        "memo_hits",
    )

    def __init__(self) -> None:
        self.vertex_labels = LabelInterner()
        self.edge_labels = LabelInterner()
        #: Memo for :func:`repro.ged.heuristics.subgraph_entry` — shared
        #: across pairs (values are pure functions of the subgraph).
        self.subgraph_cache: dict = {}
        self._compiled: Dict[int, CompiledGraph] = {}
        self.compile_seconds: float = 0.0
        self.hits: int = 0
        self.misses: int = 0
        #: Pair-level verdict memo (Nass-style): per ordered graph-
        #: identity pair, the best known ``[r, s, exact, lower, upper]``
        #: GED knowledge accumulated across searches.  The graph
        #: references in the entry pin both objects alive, so the
        #: ``id()``-pair key can never be recycled while the cache
        #: lives (the same identity discipline as ``_compiled``).
        self._verdicts: Dict[Tuple[int, int], list] = {}
        self.memo_hits: int = 0

    def record_verdict(
        self, r: Graph, s: Graph, tau: int, search: GedSearchResult
    ) -> None:
        """Fold one search result into the pair's verdict entry.

        ``search`` is a :class:`~repro.ged.astar.GedSearchResult` (or
        anything shaped like one) produced at threshold ``tau``:

        * a decided search contributes the exact distance (when
          ``<= tau``) or the fact ``ged > tau`` (a lower bound);
        * a budget-exhausted search contributes its ``lower``/``upper``
          bracket; brackets from different runs intersect (max of
          lowers, min of uppers) and a closed bracket becomes exact.
        """
        key = (id(r), id(s))
        entry = self._verdicts.get(key)
        if entry is None:
            entry = [r, s, None, 0, None]
            self._verdicts[key] = entry
        if getattr(search, "budget_exhausted", False):
            if search.lower is not None and search.lower > entry[3]:
                entry[3] = search.lower
            if search.upper is not None and (
                entry[4] is None or search.upper < entry[4]
            ):
                entry[4] = search.upper
            if entry[4] is not None and entry[3] == entry[4]:
                entry[2] = entry[4]
        elif search.exceeded_threshold:
            if tau + 1 > entry[3]:
                entry[3] = tau + 1
        else:
            distance = search.distance
            entry[2] = distance
            if distance > entry[3]:
                entry[3] = distance
            if entry[4] is None or distance < entry[4]:
                entry[4] = distance

    def lookup_verdict(
        self, r: Graph, s: Graph, tau: int
    ) -> Optional[Tuple[bool, Optional[int], int, Optional[int]]]:
        """Decide ``ged(r, s) <= tau`` from memoized verdicts, if possible.

        Returns ``None`` when the accumulated knowledge cannot decide
        this threshold, else ``(accept, exact, lower, upper)`` —
        ``exact`` is the distance when known, the bounds are the
        entry's current bracket.  Counts a ``memo_hits`` tick on every
        decided lookup.
        """
        entry = self._verdicts.get((id(r), id(s)))
        if entry is None:
            return None
        _r, _s, exact, lower, upper = entry
        if exact is not None:
            self.memo_hits += 1
            return (exact <= tau, exact, lower, upper)
        if lower > tau:
            self.memo_hits += 1
            return (False, None, lower, upper)
        if upper is not None and upper <= tau:
            self.memo_hits += 1
            return (True, None, lower, upper)
        return None

    def compile(self, g: Graph) -> CompiledGraph:
        """The compiled form of ``g``, compiling on first sight."""
        key = id(g)
        compiled = self._compiled.get(key)
        if compiled is not None:
            self.hits += 1
            return compiled
        started = time.perf_counter()
        compiled = compile_graph(g, self.vertex_labels, self.edge_labels)
        self.compile_seconds += time.perf_counter() - started
        self.misses += 1
        self._compiled[key] = compiled
        return compiled

    def __len__(self) -> int:
        return len(self._compiled)


def _extension_cost_int(
    cr: CompiledGraph,
    cs: CompiledGraph,
    order: Sequence[int],
    mapping: Tuple[int, ...],
    u: int,
    v: int,
) -> int:
    """Incremental cost of mapping ``u`` to ``v`` (``-1`` = ε).

    The integer twin of :func:`repro.ged.astar._extension_cost`,
    charging vertex cost plus every edge between ``u``/``v`` and the
    previously mapped part — used by the greedy upper bound and the
    anchor bound (the main loop inlines a faster neighbor-list form).
    """
    if v < 0:
        delta = 1
    elif cr.vlab[u] != cs.vlab[v]:
        delta = 1
    else:
        delta = 0
    n, m = cr.n, cs.n
    radj, sadj = cr.adj, cs.adj
    directed = cr.directed
    for j, w in enumerate(mapping):
        uj = order[j]
        rl = radj[u * n + uj]
        sl = sadj[v * m + w] if (v >= 0 and w >= 0) else 0
        if rl:
            if sl != rl:
                delta += 1
        elif sl:
            delta += 1
        if directed:
            rl = radj[uj * n + u]
            sl = sadj[w * m + v] if (v >= 0 and w >= 0) else 0
            if rl:
                if sl != rl:
                    delta += 1
            elif sl:
                delta += 1
    return delta


def _completion_cost_int(cs: CompiledGraph, used: int) -> int:
    """Cost of inserting the part of ``s`` never matched (bitmask form)."""
    cost = 0
    for v in range(cs.n):
        if not (used >> v) & 1:
            cost += 1
    for x, y, _el in cs.edge_list:
        if not ((used >> x) & 1 and (used >> y) & 1):
            cost += 1
    return cost


def _greedy_upper_int(
    cr: CompiledGraph,
    cs: CompiledGraph,
    order: Sequence[int],
    mapping: Tuple[int, ...],
    used: int,
    g: int,
) -> int:
    """Greedy completion cost — the integer twin of the object backend's
    ``_greedy_upper_bound`` (identical choices: scan ``s`` in insertion
    order, strict improvement over the ε default)."""
    total = g
    m = cs.n
    for k in range(len(mapping), len(order)):
        u = order[k]
        best_delta = _extension_cost_int(cr, cs, order, mapping, u, -1)
        best_v = -1
        for v in range(m):
            if (used >> v) & 1:
                continue
            delta = _extension_cost_int(cr, cs, order, mapping, u, v)
            if delta < best_delta:
                best_delta, best_v = delta, v
        total += best_delta
        mapping = mapping + (best_v,)
        if best_v >= 0:
            used |= 1 << best_v
    return total + _completion_cost_int(cs, used)


def _gated_extra(
    cr: CompiledGraph,
    cs: CompiledGraph,
    r_rest: frozenset,
    used: int,
    q: int,
    tau: int,
    subgraph_cache: dict,
) -> int:
    """Algorithm 8's local-label term, delegated to the object machinery.

    Reconstructs the original-vertex remainder sets and calls
    :func:`repro.ged.heuristics.local_label_terms` — byte-for-byte the
    computation the object backend's improved heuristic performs, so
    values (and therefore search trajectories) stay identical.
    """
    s_vertices = cs.vertices
    s_rest = frozenset(
        s_vertices[v] for v in range(cs.n) if not (used >> v) & 1
    )
    return local_label_terms(
        cr.graph, cs.graph, r_rest, s_rest, q, tau, subgraph_cache
    )


def _anchor_bound(
    cr: CompiledGraph,
    cs: CompiledGraph,
    order: Sequence[int],
    mapping: Tuple[int, ...],
    used: int,
    k1: int,
) -> int:
    """Anchor-aware completion lower bound (branch-match style).

    For each unmapped ``r`` vertex ``w``, the true completion pays at
    least ``min`` over images ``v ∈ unused ∪ {ε}`` of the vertex cost
    plus the cost of ``w``'s *anchored* edges — edges to already-mapped
    vertices, whose images are fixed, so mapping ``w`` to ``v``
    determines each anchored edge's fate.  Anchored edges of distinct
    unmapped vertices are distinct edges (each has exactly one unmapped
    endpoint) and vertex operations are disjoint, so the per-vertex
    minima add up; dropping injectivity keeps it a lower bound.
    Insertions are not counted — the bound is taken ``max``-wise
    against the label bound, never added.
    """
    n, m = cr.n, cs.n
    radj, sadj = cr.adj, cs.adj
    directed = cr.directed
    total = 0
    for idx in range(k1, n):
        w = order[idx]
        anchored = []
        w_row = w * n
        for j in range(k1):
            uj = order[j]
            el = radj[w_row + uj]
            rev = radj[uj * n + w] if directed else 0
            if el or rev:
                anchored.append((j, el, rev))
        lw = cr.vlab[w]
        best = 1
        for _j, el, rev in anchored:
            if el:
                best += 1
            if rev:
                best += 1
        if best > 1 or anchored:
            for v in range(m):
                if (used >> v) & 1:
                    continue
                cost = 0 if cs.vlab[v] == lw else 1
                if cost >= best:
                    continue
                v_row = v * m
                for j, el, rev in anchored:
                    x = mapping[j]
                    if el:
                        sl = sadj[v_row + x] if x >= 0 else 0
                        if sl != el:
                            cost += 1
                    if rev:
                        sl = sadj[x * m + v] if x >= 0 else 0
                        if sl != rev:
                            cost += 1
                    if cost >= best:
                        break
                if cost < best:
                    best = cost
                    if best == 0:
                        break
        else:
            for v in range(m):
                if not (used >> v) & 1 and cs.vlab[v] == lw:
                    best = 0
                    break
        total += best
    return total


def compiled_ged_detailed(
    cr: CompiledGraph,
    cs: CompiledGraph,
    threshold: Optional[int] = None,
    vertex_order: Optional[Sequence[int]] = None,
    budget: Optional[VerificationBudget] = None,
    improved_h: bool = False,
    q: int = 0,
    h_tau: int = 0,
    max_remaining: Optional[int] = 8,
    subgraph_cache: Optional[dict] = None,
    anchor_bound: bool = False,
) -> GedSearchResult:
    """A* over compiled graphs — the integer twin of
    :func:`repro.ged.astar.graph_edit_distance_detailed`.

    Parameters
    ----------
    threshold / budget:
        Exactly as in the object backend: prune ``f > threshold``
        states (reporting ``threshold + 1`` on excess) and degrade to a
        ``lower ≤ ged ≤ upper`` bounded verdict on budget exhaustion.
    vertex_order:
        Mapping order as dense ``r`` indices; defaults to ``0..n-1``.
    improved_h / q / h_tau / max_remaining:
        ``improved_h=False`` is the plain remaining-label heuristic
        (:func:`~repro.ged.heuristics.label_heuristic`); ``True`` adds
        the gated local-label term of Algorithm 8 with q-gram length
        ``q``, cap ``h_tau`` and remainder gate ``max_remaining`` —
        the same configuration ``make_local_label_heuristic`` builds.
    subgraph_cache:
        Memo for the gated term's subgraph profiles, normally
        :attr:`VerificationCache.subgraph_cache` so extraction is paid
        once per distinct remainder across the whole join.
    anchor_bound:
        Enable the anchor-aware lower bound (off by default): tighter
        pruning, same distances, expansion counts may shrink.

    Raises
    ------
    ParameterError
        On a negative threshold, mismatched directedness, or an invalid
        vertex order.
    SearchExhaustedError
        If an unbounded search empties its queue (cannot happen for
        simple graphs; mirrors the object backend's discipline).
    """
    if threshold is not None and threshold < 0:
        raise ParameterError(f"threshold must be >= 0, got {threshold}")
    if cr.directed != cs.directed:
        raise ParameterError("cannot compare a directed with an undirected graph")
    n, m = cr.n, cs.n
    order: List[int] = (
        list(range(n)) if vertex_order is None else list(vertex_order)
    )
    if sorted(order) != list(range(n)):
        raise ParameterError("vertex_order must be a permutation of V(r)")

    directed = cr.directed
    rvlab, svlab = cr.vlab, cs.vlab
    radj, sadj = cr.adj, cs.adj
    s_incident = cs.incident
    s_out, s_in = cs.out_nbrs, cs.in_nbrs
    s_edges = cs.edge_list
    num_s_edges = cs.num_edges

    # ---- per-search tables ------------------------------------------------
    # Label-count arrays are sized to the union of both graphs' label ids.
    num_vl = max(cr.max_vlab, cs.max_vlab) + 1
    num_el = max(cr.max_elab, cs.max_elab) + 1

    # r-side remainder label counts per depth d (vertices order[d:], and
    # edges with >= 1 endpoint at position >= d).
    pos = [0] * n
    for d, u in enumerate(order):
        pos[u] = d
    rv_depth: List[List[int]] = [[0] * num_vl for _ in range(n + 1)]
    for d in range(n - 1, -1, -1):
        row = rv_depth[d]
        row[:] = rv_depth[d + 1]
        row[rvlab[order[d]]] += 1
    leave_buckets: List[List[int]] = [[] for _ in range(n + 1)]
    for x, y, el in cr.edge_list:
        depth = pos[x] if pos[x] > pos[y] else pos[y]
        leave_buckets[depth + 1].append(el)
    re_depth: List[List[int]] = [[0] * num_el for _ in range(n + 1)]
    resize = [0] * (n + 1)
    row = re_depth[0]
    for x, y, el in cr.edge_list:
        row[el] += 1
    resize[0] = len(cr.edge_list)
    for d in range(1, n + 1):
        row = re_depth[d]
        row[:] = re_depth[d - 1]
        for el in leave_buckets[d]:
            row[el] -= 1
        resize[d] = resize[d - 1] - len(leave_buckets[d])

    # Full s-side label counts (per pop these are copied and decremented).
    sv_full = [0] * num_vl
    for label_id in svlab:
        sv_full[label_id] += 1
    se_full = [0] * num_el
    for _x, _y, el in s_edges:
        se_full[el] += 1

    # Original-vertex remainder sets per depth, for the gated term.
    gated = improved_h
    if gated:
        r_vertices = cr.vertices
        r_rest_sets: List[frozenset] = [
            frozenset(r_vertices[pos_v] for pos_v in order[d:])
            for d in range(n + 1)
        ]
    else:
        r_rest_sets = []
    gated_cache: Dict[Tuple[int, int], int] = {}
    if subgraph_cache is None:
        subgraph_cache = {}

    counter = itertools.count()
    expanded = 0
    generated = 0

    # ---- initial state ----------------------------------------------------
    iv0 = 0
    rv0 = rv_depth[0]
    for label_id in range(num_vl):
        a, b = rv0[label_id], sv_full[label_id]
        iv0 += a if a < b else b
    ie0 = 0
    re0 = re_depth[0]
    for label_id in range(num_el):
        a, b = re0[label_id], se_full[label_id]
        ie0 += a if a < b else b
    start_f = (max(n, m) - iv0) + (max(resize[0], num_s_edges) - ie0)
    if gated and n and m and start_f <= h_tau and (
        max_remaining is None or (n <= max_remaining and m <= max_remaining)
    ):
        extra = _gated_extra(
            cr, cs, r_rest_sets[0], 0, q, h_tau, subgraph_cache
        )
        if extra > start_f:
            start_f = extra
    if anchor_bound and n:
        anchored = _anchor_bound(cr, cs, order, (), 0, 0)
        if anchored > start_f:
            start_f = anchored

    if n == 0:
        distance = m + num_s_edges
        if threshold is not None and distance > threshold:
            return GedSearchResult(threshold + 1, 0, 0, True)
        return GedSearchResult(distance, 0, 0, False)

    # State: (f, -depth, tie, g, mapping, used-bitmask).
    heap: List[Tuple[int, int, int, int, Tuple[int, ...], int]] = []
    if threshold is None or start_f <= threshold:
        heapq.heappush(heap, (start_f, -0, next(counter), 0, (), 0))
        generated += 1

    meter = budget.start() if budget is not None else None
    sv = sv_full[:]
    se = se_full[:]

    while heap:
        if meter is not None and not meter.tick():
            lower = heap[0][0]
            _bf, _bk, _bt, bg, bmapping, bused = heap[0]
            upper = _greedy_upper_int(cr, cs, order, bmapping, bused, bg)
            return GedSearchResult(
                upper,
                expanded,
                generated,
                False,
                budget_exhausted=True,
                lower=lower,
                upper=upper,
            )
        f, _neg_k, _tie, g, mapping, used = heapq.heappop(heap)
        k = len(mapping)
        expanded += 1
        if k == n:
            return GedSearchResult(g, expanded, generated, False)

        k1 = k + 1
        u = order[k]
        u_row = u * n

        # --- rebuild the s-side remainder counters for this expansion ---
        sv[:] = sv_full
        se[:] = se_full
        sv_size = m
        se_size = num_s_edges
        uu = used
        v0 = 0
        while uu:
            if uu & 1:
                sv[svlab[v0]] -= 1
                sv_size -= 1
                for w, el in s_incident[v0]:
                    if w < v0 and (used >> w) & 1:
                        se[el] -= 1
                        se_size -= 1
            uu >>= 1
            v0 += 1

        # Base intersections against the child depth's r-side tables.
        rv1 = rv_depth[k1]
        re1 = re_depth[k1]
        iv_base = 0
        for label_id in range(num_vl):
            a, b = rv1[label_id], sv[label_id]
            iv_base += a if a < b else b
        ie_base = 0
        for label_id in range(num_el):
            a, b = re1[label_id], se[label_id]
            ie_base += a if a < b else b
        rvsize1 = n - k1
        resize1 = resize[k1]

        # u's edges to the mapped part, and the image -> position map.
        u_edges = [
            (j, radj[u_row + order[j]])
            for j in range(k)
            if radj[u_row + order[j]]
        ]
        u_redges = (
            [
                (j, radj[order[j] * n + u])
                for j in range(k)
                if radj[order[j] * n + u]
            ]
            if directed
            else u_edges
        )
        imap = [-1] * m
        for j, w in enumerate(mapping):
            if w >= 0:
                imap[w] = j
        eps_delta = len(u_edges) + (len(u_redges) if directed else 0)

        targets = [v for v in range(m) if not (used >> v) & 1]
        targets.append(-1)
        for v in targets:
            # --- extension cost (inlined integer form) -------------------
            if v < 0:
                delta = 1 + eps_delta
            else:
                delta = 0 if rvlab[u] == svlab[v] else 1
                v_row = v * m
                for j, rl in u_edges:
                    w = mapping[j]
                    if w < 0 or sadj[v_row + w] != rl:
                        delta += 1
                for w2 in s_out[v]:
                    j = imap[w2]
                    if j >= 0 and radj[u_row + order[j]] == 0:
                        delta += 1
                if directed:
                    for j, rl in u_redges:
                        w = mapping[j]
                        if w < 0 or sadj[w * m + v] != rl:
                            delta += 1
                    for w2 in s_in[v]:
                        j = imap[w2]
                        if j >= 0 and radj[order[j] * n + u] == 0:
                            delta += 1
            g2 = g + delta
            if threshold is not None and g2 > threshold:
                continue

            # --- incremental remainder counters for the child ------------
            if v < 0:
                used2 = used
                sv_size2 = sv_size
                se_size2 = se_size
                iv2 = iv_base
                ie2 = ie_base
            else:
                used2 = used | (1 << v)
                sv_size2 = sv_size - 1
                label_id = svlab[v]
                iv2 = iv_base - (1 if sv[label_id] <= rv1[label_id] else 0)
                ie2 = ie_base
                removed = 0
                for w, el in s_incident[v]:
                    if (used >> w) & 1:
                        if se[el] <= re1[el]:
                            ie2 -= 1
                        se[el] -= 1
                        removed += 1
                se_size2 = se_size - removed
                if removed:
                    for w, el in s_incident[v]:
                        if (used >> w) & 1:
                            se[el] += 1

            if k1 == n:
                g2 += sv_size2 + se_size2
                h2 = 0
            else:
                gv = rvsize1 if rvsize1 > sv_size2 else sv_size2
                ge = resize1 if resize1 > se_size2 else se_size2
                h2 = (gv - iv2) + (ge - ie2)
                if gated and h2 <= h_tau and sv_size2 and (
                    max_remaining is None
                    or (
                        n - k1 <= max_remaining
                        and sv_size2 <= max_remaining
                    )
                ):
                    gate_key = (k1, used2)
                    extra = gated_cache.get(gate_key)
                    if extra is None:
                        extra = _gated_extra(
                            cr,
                            cs,
                            r_rest_sets[k1],
                            used2,
                            q,
                            h_tau,
                            subgraph_cache,
                        )
                        gated_cache[gate_key] = extra
                    if extra > h2:
                        h2 = extra
                if anchor_bound:
                    anchored = _anchor_bound(
                        cr, cs, order, mapping + (v,), used2, k1
                    )
                    if anchored > h2:
                        h2 = anchored
            f2 = g2 + h2
            if threshold is not None and f2 > threshold:
                continue
            heapq.heappush(
                heap, (f2, -k1, next(counter), g2, mapping + (v,), used2)
            )
            generated += 1

    if threshold is None:
        raise SearchExhaustedError(
            "unbounded compiled GED search exhausted without a goal"
        )
    return GedSearchResult(threshold + 1, expanded, generated, True)
