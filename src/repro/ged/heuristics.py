"""Admissible heuristics ``h(x)`` for the A* GED search.

All heuristics lower-bound the cost of completing a partial vertex
mapping, keeping A* exact:

* :func:`zero_heuristic` — Dijkstra-style baseline;
* :func:`label_heuristic` — ``Γ`` label bound on the remaining parts
  (the unweighted form of Riesen et al.'s bipartite heuristic, which the
  paper notes "becomes exactly the result of global label filtering");
* :func:`make_local_label_heuristic` — the paper's *improved h(x)*
  (Algorithm 8): the maximum of the global label bound and both-direction
  local label filtering bounds computed on the remaining subgraphs.

Admissibility notes.  The remaining part ``r_q`` contributes its
unmapped vertices and the edges *resident* on them (at least one
unmapped endpoint) — every edit operation still to be paid touches those
only, and each remaining-label surplus needs a distinct operation, so
the ``Γ`` sum is a lower bound.  The local-label term is evaluated on
the *induced* remaining subgraphs (both endpoints unmapped): completing
the mapping restricted to those subgraphs is itself a valid full mapping
between them, so ``ged(r_induced, s_induced)`` — and any lower bound on
it — under-estimates the remaining cost.
"""

from __future__ import annotations

from collections import Counter
from typing import AbstractSet, Callable, Optional, Sequence

from repro.grams.labels import gamma, local_label_lower_bound
from repro.grams.mismatch import compare_qgrams
from repro.grams.qgrams import extract_qgrams
from repro.graph.graph import Graph, Vertex

__all__ = [
    "Heuristic",
    "zero_heuristic",
    "label_heuristic",
    "make_local_label_heuristic",
    "local_label_terms",
    "subgraph_entry",
]

#: Heuristic signature: (r, s, unmapped r vertices, unused s vertices) -> int.
Heuristic = Callable[[Graph, Graph, Sequence[Vertex], AbstractSet[Vertex]], int]


def zero_heuristic(
    r: Graph, s: Graph, r_rest: Sequence[Vertex], s_rest: AbstractSet[Vertex]
) -> int:
    """The trivial heuristic (turns A* into uniform-cost search)."""
    return 0


def _remaining_label_bound(
    r: Graph, s: Graph, r_rest: Sequence[Vertex], s_rest: AbstractSet[Vertex]
) -> int:
    r_set = set(r_rest)
    rv = Counter(r.vertex_label(v) for v in r_rest)
    sv = Counter(s.vertex_label(v) for v in s_rest)
    re = Counter(
        label
        for u, v, label in r.edges()
        if u in r_set or v in r_set
    )
    se = Counter(
        label
        for u, v, label in s.edges()
        if u in s_rest or v in s_rest
    )
    return gamma(rv, sv) + gamma(re, se)


def label_heuristic(
    r: Graph, s: Graph, r_rest: Sequence[Vertex], s_rest: AbstractSet[Vertex]
) -> int:
    """``Γ(L_V) + Γ(L_E)`` over the remaining parts (resident edges)."""
    return _remaining_label_bound(r, s, r_rest, s_rest)


def subgraph_entry(g: Graph, rest: frozenset, q: int, cache: dict) -> tuple:
    """Memoized ``(subgraph, q-gram profile, label multisets)`` of a remainder.

    Keyed by ``(id(g), rest)`` so one cache may serve many graphs — the
    compiled backend shares a single cache across every candidate pair
    of a join, while :func:`make_local_label_heuristic` keeps a
    per-pair cache.  Both produce identical values: the entry is a pure
    function of the induced subgraph.
    """
    key = (id(g), rest)
    entry = cache.get(key)
    if entry is None:
        sub = g.subgraph(rest)
        profile = extract_qgrams(sub, q)
        labels = (sub.vertex_label_multiset(), sub.edge_label_multiset())
        entry = (sub, profile, labels)
        cache[key] = entry
    return entry


def local_label_terms(
    r: Graph,
    s: Graph,
    r_rest: frozenset,
    s_rest: frozenset,
    q: int,
    tau: int,
    cache: dict,
) -> int:
    """``max(ε₄, ε₅)`` — Algorithm 8's local-label term on the remainders.

    Both-direction local label filtering bounds evaluated on the
    *induced* remaining subgraphs (see the module docstring for the
    admissibility argument).  ``cache`` memoizes subgraph extraction via
    :func:`subgraph_entry`; the comparison itself runs per call.
    """
    r_sub, p_r, r_labels = subgraph_entry(r, r_rest, q, cache)
    s_sub, p_s, s_labels = subgraph_entry(s, s_rest, q, cache)
    mismatch = compare_qgrams(p_r, p_s)
    eps2 = local_label_lower_bound(
        mismatch.mismatch_r, r_sub, s_sub, tau,
        other_labels=s_labels, required_keys=mismatch.absent_keys_r,
    )
    eps3 = local_label_lower_bound(
        mismatch.mismatch_s, s_sub, r_sub, tau,
        other_labels=r_labels, required_keys=mismatch.absent_keys_s,
    )
    return max(eps2, eps3)


def make_local_label_heuristic(
    q: int, tau: int, max_remaining: Optional[int] = 8
) -> Heuristic:
    """Build the paper's improved ``h(x)`` (Algorithm 8).

    ``q`` is the q-gram length; ``tau`` caps the per-component exact
    min-edit searches (the search never needs values beyond ``τ + 1``).

    The returned heuristic memoizes subgraph profiles by remaining
    vertex set: the fixed mapping order makes every ``r``-side remainder
    depend only on the search depth (n distinct sets per A* run), and
    ``s``-side remainders recur across branches, so the dominant cost —
    q-gram extraction — is paid once per distinct remainder.

    ``max_remaining`` gates the expensive local-label term to states
    whose remainder has at most that many vertices (where both the bulk
    of the search states live and extraction is cheap); larger remainders
    fall back to the ``Γ`` bound.  The gate trades heuristic strength
    for per-state cost without affecting admissibility — pass ``None``
    to evaluate Algorithm 8 at every state, as the paper's C++
    implementation does (it prunes the most states but is far slower in
    CPython; ``bench_ablation_heuristic_gate`` quantifies the sweep and
    picked the default of 8).
    """

    profile_cache: dict = {}

    def improved_h(
        r: Graph, s: Graph, r_rest: Sequence[Vertex], s_rest: AbstractSet[Vertex]
    ) -> int:
        eps1 = _remaining_label_bound(r, s, r_rest, s_rest)
        if eps1 > tau or not r_rest or not s_rest:
            return eps1
        if max_remaining is not None and (
            len(r_rest) > max_remaining or len(s_rest) > max_remaining
        ):
            return eps1
        extra = local_label_terms(
            r, s, frozenset(r_rest), frozenset(s_rest), q, tau, profile_cache
        )
        return max(eps1, extra)

    return improved_h
