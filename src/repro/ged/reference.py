"""Reference (brute-force) graph edit distance.

Exhaustively enumerates every total mapping ``V(r) -> V(s) ∪ {ε}``
(injective on the non-ε part) and takes the minimum induced edit cost.
Exponential — usable only on toy graphs — but entirely independent of
the A* machinery, which makes it the ground truth for the test suite.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Optional

from repro.ged.cost import induced_edit_cost
from repro.graph.graph import Graph, Vertex

__all__ = ["brute_force_ged"]


def brute_force_ged(r: Graph, s: Graph) -> int:
    """Exact GED by exhaustive mapping enumeration (toy graphs only)."""
    r_vertices = list(r.vertices())
    s_vertices = list(s.vertices())
    n = len(r_vertices)

    best: Optional[int] = None
    # Every injective partial assignment r -> s arises from a permutation
    # of s-vertices padded with ε: pad s with n deletion slots, choose an
    # n-arrangement.
    slots = s_vertices + [None] * n
    seen = set()
    for arrangement in permutations(slots, n):
        if arrangement in seen:
            continue
        seen.add(arrangement)
        mapping: Dict[Vertex, Optional[Vertex]] = dict(zip(r_vertices, arrangement))
        cost = induced_edit_cost(r, s, mapping)
        if best is None or cost < best:
            best = cost
            if best == 0:
                break
    if best is None:  # n == 0: insert all of s
        empty: Dict[Vertex, Optional[Vertex]] = {}
        best = induced_edit_cost(r, s, empty)
    return best
