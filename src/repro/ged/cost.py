"""Edit cost induced by a vertex mapping.

Any total mapping from ``V(r)`` to ``V(s) ∪ {ε}`` (injective on the
non-ε part) determines a canonical edit script: relabel/delete the
mapped/ε vertices, insert the unmatched ``s`` vertices, and fix up every
edge.  Its cost is an upper bound on ``ged(r, s)``, with equality for an
optimal mapping — this is both the A* goal test's ``g`` value and the
upper-bound half of the AppFull baseline.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.exceptions import ParameterError
from repro.graph.graph import Graph, Vertex

__all__ = ["induced_edit_cost"]


def induced_edit_cost(
    r: Graph, s: Graph, mapping: Dict[Vertex, Optional[Vertex]]
) -> int:
    """Cost of the edit script induced by ``mapping``.

    Parameters
    ----------
    mapping:
        Maps *every* vertex of ``r`` to a distinct vertex of ``s`` or to
        ``None`` (deletion).  Vertices of ``s`` not in the image are
        insertions.

    Raises
    ------
    ParameterError
        If the mapping is not total on ``V(r)``, not injective, or maps
        to vertices absent from ``s``.
    """
    if r.is_directed != s.is_directed:
        raise ParameterError("cannot compare a directed with an undirected graph")
    if set(mapping) != set(r.vertices()):
        raise ParameterError("mapping must be total on V(r)")
    inverse: Dict[Vertex, Vertex] = {}
    for u, v in mapping.items():
        if v is None:
            continue
        if not s.has_vertex(v):
            raise ParameterError(f"mapping target {v!r} is not a vertex of s")
        if v in inverse:
            raise ParameterError(f"mapping is not injective at {v!r}")
        inverse[v] = u

    cost = 0
    # Vertex operations.
    for u, v in mapping.items():
        if v is None:
            cost += 1  # deletion
        elif r.vertex_label(u) != s.vertex_label(v):
            cost += 1  # relabel
    cost += s.num_vertices - len(inverse)  # insertions

    # Edges of r: matched (possibly relabeled) or deleted.
    for u1, u2, label in r.edges():
        v1, v2 = mapping[u1], mapping[u2]
        if v1 is None or v2 is None or not s.has_edge(v1, v2):
            cost += 1  # deletion
        elif s.edge_label(v1, v2) != label:
            cost += 1  # relabel
    # Edges of s with no counterpart in r: insertions.
    for v1, v2, _ in s.edges():
        u1, u2 = inverse.get(v1), inverse.get(v2)
        if u1 is None or u2 is None or not r.has_edge(u1, u2):
            cost += 1
    return cost
