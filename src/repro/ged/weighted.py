"""Weighted graph edit distance.

The A* of Riesen, Fankhauser & Bunke — the algorithm the paper builds
its verifier on — is defined for *weighted* GED: arbitrary non-negative
costs per operation, possibly label-dependent.  The paper specializes
to unit costs (where the filter stack applies); this module implements
the general form for users who need domain-specific costs (e.g. cheap
bond-order changes vs expensive atom substitutions).

A :class:`CostModel` supplies the six cost functions.  The search is
the same fixed-order mapping tree as :mod:`repro.ged.astar` with a
cost-model-aware ``g`` and a simple admissible ``h`` (the cheapest
possible treatment of each remaining vertex, by matching it to `any`
remaining partner or deleting it — a per-vertex minimum, never an
overestimate).  None of the q-gram filters apply under non-unit costs,
so this is a standalone distance computation, not a join component.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError, SearchExhaustedError
from repro.graph.graph import Graph, Label, Vertex

__all__ = ["CostModel", "weighted_ged", "weighted_induced_cost"]

LabelCost = Callable[[Label], float]
PairCost = Callable[[Label, Label], float]


def _unit_sub(a: Label, b: Label) -> float:
    return 0.0 if a == b else 1.0


def _one(_: Label) -> float:
    return 1.0


@dataclass(frozen=True)
class CostModel:
    """Non-negative costs for the six edit operations.

    Substitution costs take both labels and must be 0 for equal labels
    (validated); insert/delete costs take the inserted/deleted label.
    The default is the paper's unit-cost model.
    """

    vertex_insertion: LabelCost = field(default=_one)
    vertex_deletion: LabelCost = field(default=_one)
    vertex_substitution: PairCost = field(default=_unit_sub)
    edge_insertion: LabelCost = field(default=_one)
    edge_deletion: LabelCost = field(default=_one)
    edge_substitution: PairCost = field(default=_unit_sub)

    def validate_on(self, labels: Sequence[Label]) -> None:
        """Sanity-check the model on a label sample.

        Raises
        ------
        ParameterError
            On negative costs or non-zero same-label substitution.
        """
        for label in labels:
            for fn in (self.vertex_insertion, self.vertex_deletion,
                       self.edge_insertion, self.edge_deletion):
                if fn(label) < 0:
                    raise ParameterError(f"negative cost for label {label!r}")
            if self.vertex_substitution(label, label) != 0:
                raise ParameterError(
                    f"vertex substitution of {label!r} with itself must cost 0"
                )
            if self.edge_substitution(label, label) != 0:
                raise ParameterError(
                    f"edge substitution of {label!r} with itself must cost 0"
                )


def weighted_induced_cost(
    r: Graph,
    s: Graph,
    mapping: Dict[Vertex, Optional[Vertex]],
    costs: CostModel,
) -> float:
    """Weighted edit cost of the script induced by a full vertex mapping.

    Deleting a vertex implies deleting its incident edges; the cost
    model prices each of those edge deletions individually.
    """
    if r.is_directed != s.is_directed:
        raise ParameterError("cannot compare a directed with an undirected graph")
    if set(mapping) != set(r.vertices()):
        raise ParameterError("mapping must be total on V(r)")
    inverse: Dict[Vertex, Vertex] = {}
    for u, v in mapping.items():
        if v is None:
            continue
        if v in inverse:
            raise ParameterError(f"mapping is not injective at {v!r}")
        inverse[v] = u

    total = 0.0
    for u, v in mapping.items():
        if v is None:
            total += costs.vertex_deletion(r.vertex_label(u))
        else:
            total += costs.vertex_substitution(r.vertex_label(u), s.vertex_label(v))
    for v in s.vertices():
        if v not in inverse:
            total += costs.vertex_insertion(s.vertex_label(v))

    for u1, u2, label in r.edges():
        v1, v2 = mapping[u1], mapping[u2]
        if v1 is None or v2 is None or not s.has_edge(v1, v2):
            total += costs.edge_deletion(label)
        else:
            total += costs.edge_substitution(label, s.edge_label(v1, v2))
    for v1, v2, label in s.edges():
        u1, u2 = inverse.get(v1), inverse.get(v2)
        if u1 is None or u2 is None or not r.has_edge(u1, u2):
            total += costs.edge_insertion(label)
    return total


def _extension_cost_weighted(
    r: Graph,
    s: Graph,
    order: Sequence[Vertex],
    mapping: Tuple[Optional[Vertex], ...],
    u: Vertex,
    v: Optional[Vertex],
    costs: CostModel,
) -> float:
    delta = 0.0
    if v is None:
        delta += costs.vertex_deletion(r.vertex_label(u))
    else:
        delta += costs.vertex_substitution(r.vertex_label(u), s.vertex_label(v))

    directed = r.is_directed
    for j, w in enumerate(mapping):
        u_j = order[j]
        pairs = (((u, u_j), (v, w)), ((u_j, u), (w, v))) if directed else (
            ((u, u_j), (v, w)),
        )
        for (a, b), (x, y) in pairs:
            if r.has_edge(a, b):
                label = r.edge_label(a, b)
                if x is None or y is None or not s.has_edge(x, y):
                    delta += costs.edge_deletion(label)
                else:
                    delta += costs.edge_substitution(label, s.edge_label(x, y))
            else:
                if x is not None and y is not None and s.has_edge(x, y):
                    delta += costs.edge_insertion(s.edge_label(x, y))
    return delta


def _completion_cost_weighted(s: Graph, used: frozenset, costs: CostModel) -> float:
    total = sum(
        costs.vertex_insertion(s.vertex_label(v))
        for v in s.vertices()
        if v not in used
    )
    for a, b, label in s.edges():
        if a not in used or b not in used:
            total += costs.edge_insertion(label)
    return total


def _vertex_floor(r: Graph, s: Graph, costs: CostModel) -> Callable:
    """Per-vertex admissible remainder bound.

    Each unmapped ``r``-vertex will either be deleted or substituted
    against *some* ``s``-vertex; the cheapest of those options (ignoring
    which partner, ignoring edges — both only lower the value) is a
    valid per-vertex floor, and the per-vertex floors add up.  At least
    ``|s_rest| − |r_rest|`` unmatched ``s``-vertices must additionally
    be inserted; insertions are operations disjoint from the
    ``r``-vertex ones, so the cheapest-surplus insertion total adds
    soundly.
    """

    def h(r_rest: Sequence[Vertex], s_rest: frozenset) -> float:
        s_labels = [s.vertex_label(v) for v in s_rest]
        from_r = 0.0
        for u in r_rest:
            lu = r.vertex_label(u)
            best = costs.vertex_deletion(lu)
            for lv in s_labels:
                cost = costs.vertex_substitution(lu, lv)
                if cost < best:
                    best = cost
            from_r += best
        surplus = len(s_rest) - len(r_rest)
        from_s = 0.0
        if surplus > 0:
            ins = sorted(costs.vertex_insertion(lv) for lv in s_labels)
            from_s = sum(ins[:surplus])
        return from_r + from_s

    return h


def weighted_ged(
    r: Graph,
    s: Graph,
    costs: Optional[CostModel] = None,
    threshold: Optional[float] = None,
) -> float:
    """Exact weighted graph edit distance by A*.

    With a ``threshold``, states costing more are pruned and the result
    is ``inf`` when the distance exceeds it (float semantics — weighted
    distances need not be integers).

    Raises
    ------
    ParameterError
        On a negative threshold, mixed directedness, or an invalid cost
        model.
    """
    if costs is None:
        costs = CostModel()
    if threshold is not None and threshold < 0:
        raise ParameterError(f"threshold must be >= 0, got {threshold}")
    if r.is_directed != s.is_directed:
        raise ParameterError("cannot compare a directed with an undirected graph")
    sample = set(r.vertex_label_multiset()) | set(s.vertex_label_multiset()) | set(
        r.edge_label_multiset()
    ) | set(s.edge_label_multiset())
    costs.validate_on(sorted(sample, key=repr))

    order = list(r.vertices())
    s_vertices = list(s.vertices())
    n = len(order)
    h = _vertex_floor(r, s, costs)

    if n == 0:
        distance = _completion_cost_weighted(s, frozenset(), costs)
        if threshold is not None and distance > threshold:
            return float("inf")
        return distance

    counter = itertools.count()
    start_h = h(order, frozenset(s_vertices))
    heap: List[Tuple[float, int, int, float, Tuple, frozenset]] = []
    if threshold is None or start_h <= threshold:
        heapq.heappush(heap, (start_h, 0, next(counter), 0.0, (), frozenset()))

    while heap:
        f, _neg_k, _tie, g, mapping, used = heapq.heappop(heap)
        k = len(mapping)
        if k == n:
            return g
        u = order[k]
        targets: List[Optional[Vertex]] = [v for v in s_vertices if v not in used]
        targets.append(None)
        for v in targets:
            g2 = g + _extension_cost_weighted(r, s, order, mapping, u, v, costs)
            if threshold is not None and g2 > threshold:
                continue
            new_mapping = mapping + (v,)
            new_used = used | {v} if v is not None else used
            if k + 1 == n:
                g2 += _completion_cost_weighted(s, new_used, costs)
                h2 = 0.0
            else:
                h2 = h(order[k + 1 :], frozenset(set(s_vertices) - new_used))
            f2 = g2 + h2
            if threshold is not None and f2 > threshold:
                continue
            heapq.heappush(
                heap, (f2, -(k + 1), next(counter), g2, new_mapping, new_used)
            )

    if threshold is None:
        raise SearchExhaustedError("unbounded weighted GED search exhausted")
    return float("inf")
