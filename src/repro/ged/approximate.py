"""Approximate graph edit distance.

The paper's related-work section surveys suboptimal GED methods used
when the exact A* is too expensive: beam-search variants of A* and
bipartite-assignment approximations (Riesen & Bunke; Zeng et al.).
This module implements the standard representatives:

* :func:`beam_search_ged` — A* with a bounded frontier ("beam") per
  depth.  Returns an *upper bound* that converges to the exact distance
  as the beam widens.
* :func:`bipartite_upper_bound` — the assignment-based approximation:
  match vertices by local star cost with the Hungarian algorithm, then
  price the induced edit script (an upper bound by construction).
* :func:`label_lower_bound` — the Γ label bound (a cheap lower bound,
  re-exported here for a symmetric API).
* :func:`ged_bounds` — convenience: (lower, upper) bracketing the exact
  distance.

All approximations are validated against the exact solver in the test
suite: lower ≤ exact ≤ upper always holds, and beam search with an
unbounded beam equals the exact distance.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.ged.astar import _completion_cost, _extension_cost
from repro.ged.cost import induced_edit_cost
from repro.ged.heuristics import Heuristic, label_heuristic
from repro.graph.graph import Graph, Vertex
from repro.matching.hungarian import hungarian
from repro.matching.stars import star_distance, star_multiset

__all__ = [
    "beam_search_ged",
    "bipartite_upper_bound",
    "label_lower_bound",
    "ged_bounds",
]


def label_lower_bound(r: Graph, s: Graph) -> int:
    """The Γ label lower bound on ``ged(r, s)`` (Lemma 5)."""
    return label_heuristic(r, s, list(r.vertices()), set(s.vertices()))


def beam_search_ged(
    r: Graph,
    s: Graph,
    beam_width: int = 64,
    heuristic: Heuristic = label_heuristic,
    vertex_order: Optional[Sequence[Vertex]] = None,
) -> int:
    """Suboptimal GED via breadth-wise beam search.

    Explores the same mapping tree as the exact A* but keeps only the
    ``beam_width`` best states per depth, so the result is an *upper
    bound* on the true distance (exact for a wide-enough beam).  Runtime
    is ``O(n · beam_width · m)`` states instead of worst-case
    exponential.

    Raises
    ------
    ParameterError
        If ``beam_width < 1`` or the vertex order is invalid.
    """
    if beam_width < 1:
        raise ParameterError(f"beam_width must be >= 1, got {beam_width}")
    if r.is_directed != s.is_directed:
        raise ParameterError("cannot compare a directed with an undirected graph")
    order: List[Vertex] = (
        list(r.vertices()) if vertex_order is None else list(vertex_order)
    )
    if set(order) != set(r.vertices()) or len(order) != r.num_vertices:
        raise ParameterError("vertex_order must be a permutation of V(r)")

    n = len(order)
    s_vertices = list(s.vertices())
    if n == 0:
        return _completion_cost(s, frozenset())

    # Each frontier entry: (f, tie, g, mapping, used).
    counter = itertools.count()
    frontier: List[Tuple[int, int, int, Tuple[Optional[Vertex], ...], frozenset]] = [
        (0, next(counter), 0, (), frozenset())
    ]
    best_complete: Optional[int] = None

    for k in range(n):
        u = order[k]
        candidates: List[
            Tuple[int, int, int, Tuple[Optional[Vertex], ...], frozenset]
        ] = []
        for _, _, g, mapping, used in frontier:
            targets: List[Optional[Vertex]] = [v for v in s_vertices if v not in used]
            targets.append(None)
            for v in targets:
                g2 = g + _extension_cost(r, s, order, mapping, u, v)
                new_mapping = mapping + (v,)
                new_used = used | {v} if v is not None else used
                if k + 1 == n:
                    total = g2 + _completion_cost(s, new_used)
                    if best_complete is None or total < best_complete:
                        best_complete = total
                else:
                    h = heuristic(r, s, order[k + 1 :], set(s_vertices) - new_used)
                    candidates.append(
                        (g2 + h, next(counter), g2, new_mapping, new_used)
                    )
        if k + 1 == n:
            break
        candidates.sort(key=lambda state: state[0])
        frontier = candidates[:beam_width]
        if not frontier:
            break

    assert best_complete is not None
    return best_complete


def bipartite_upper_bound(r: Graph, s: Graph) -> int:
    """Assignment-based GED upper bound (Riesen & Bunke style).

    Vertices of ``r`` and ``s`` are matched by the star edit distance of
    their local structures via the Hungarian algorithm (padding with
    deletion/insertion slots); the matching induces a full vertex
    mapping whose exact edit cost upper-bounds the distance.  Runs in
    ``O((n+m)^3)``.
    """
    r_vertices = list(r.vertices())
    s_vertices = list(s.vertices())
    n, m = len(r_vertices), len(s_vertices)
    if n == 0 and m == 0:
        return 0

    r_stars = star_multiset(r)
    s_stars = star_multiset(s)
    size = n + m  # full square: deletions and insertions both explicit
    big = [[0.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(size):
            if i < n and j < m:
                big[i][j] = star_distance(r_stars[i], s_stars[j])
            elif i < n:
                # Deleting r_i: vertex + its edges.
                big[i][j] = 1.0 + r.degree(r_vertices[i])
            elif j < m:
                # Inserting s_j.
                big[i][j] = 1.0 + s.degree(s_vertices[j])
            else:
                big[i][j] = 0.0
    assignment, _ = hungarian(big)

    mapping: Dict[Vertex, Optional[Vertex]] = {}
    for i, u in enumerate(r_vertices):
        j = assignment[i]
        mapping[u] = s_vertices[j] if j < m else None
    return induced_edit_cost(r, s, mapping)


def ged_bounds(r: Graph, s: Graph, beam_width: int = 16) -> Tuple[int, int]:
    """A cheap ``(lower, upper)`` bracket on ``ged(r, s)``.

    Lower: the Γ label bound.  Upper: the better of the bipartite
    assignment bound and a narrow beam search.  ``lower == upper``
    certifies the exact distance without running A*.
    """
    lower = label_lower_bound(r, s)
    upper = min(
        bipartite_upper_bound(r, s),
        beam_search_ged(r, s, beam_width=beam_width),
    )
    return lower, upper
