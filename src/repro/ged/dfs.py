"""Depth-first branch-and-bound graph edit distance (DF-GED).

The best-first A* of :mod:`repro.ged.astar` keeps its whole frontier in
memory; the classic alternative (Abu-Aisheh et al.'s DF-GED family)
explores the same fixed-order mapping tree depth-first, keeping only
the current path.  An incumbent upper bound — seeded from the bipartite
assignment approximation, exactly how practical DF-GED implementations
do it — prunes subtrees whose ``g + h`` cannot improve on it.

Properties:

* memory is O(|V|) instead of the A* frontier;
* with an admissible heuristic the result is exact;
* a ``threshold`` caps the incumbent, yielding the same
  "``τ+1`` means greater than ``τ``" contract as the A* verifier;
* a ``budget`` (:class:`repro.runtime.budget.VerificationBudget`)
  degrades the search to a *bounded verdict* instead of failing:
  ``lower`` is the admissible root estimate (every mapping costs at
  least the root ``f``) and ``upper`` is the cheapest mapping actually
  achieved — the incumbent, improved by any complete mapping the search
  finished before running out.  Unlike A*, whose exhaustion bounds come
  from the surviving frontier, DF-GED holds only the current path, so
  the root bound is the natural constant-memory lower bound.

Two implementations share the contract: :func:`dfs_ged` walks the
object graphs (the reference), :func:`dfs_ged_compiled` runs the same
branch-and-bound over :class:`~repro.ged.compiled.CompiledGraph` arrays
with the per-depth remainder tables of the compiled A* — the form the
``"dfs"`` portfolio backend uses in joins.

The module exists both as a practical alternative verifier (usable via
``verify_pair`` through the benchmarks' ablation) and as an independent
implementation to cross-check the A* search in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError, SearchExhaustedError
from repro.ged.astar import GedSearchResult, _completion_cost, _extension_cost
from repro.ged.compiled import CompiledGraph, _gated_extra
from repro.ged.heuristics import Heuristic, label_heuristic
from repro.graph.graph import Graph, Vertex
from repro.runtime.budget import VerificationBudget

__all__ = ["dfs_ged", "dfs_ged_compiled", "DfsSearchResult"]


class DfsSearchResult:
    """Outcome of a DF-GED run (mirrors ``GedSearchResult``)."""

    __slots__ = (
        "distance",
        "expanded",
        "exceeded_threshold",
        "generated",
        "budget_exhausted",
        "lower",
        "upper",
    )

    def __init__(
        self,
        distance: int,
        expanded: int,
        exceeded: bool,
        generated: int = 0,
        budget_exhausted: bool = False,
        lower: Optional[int] = None,
        upper: Optional[int] = None,
    ) -> None:
        self.distance = distance
        self.expanded = expanded
        self.exceeded_threshold = exceeded
        self.generated = generated
        self.budget_exhausted = budget_exhausted
        self.lower = lower
        self.upper = upper

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DfsSearchResult(distance={self.distance}, "
            f"expanded={self.expanded}, exceeded={self.exceeded_threshold}, "
            f"budget_exhausted={self.budget_exhausted})"
        )


def dfs_ged(
    r: Graph,
    s: Graph,
    threshold: Optional[int] = None,
    heuristic: Heuristic = label_heuristic,
    vertex_order: Optional[Sequence[Vertex]] = None,
    initial_upper_bound: Optional[int] = None,
    budget: Optional[VerificationBudget] = None,
) -> DfsSearchResult:
    """Exact GED by depth-first branch-and-bound.

    Parameters
    ----------
    threshold:
        As in the A* verifier: prune above ``threshold`` and report
        ``threshold + 1`` when the distance exceeds it.
    heuristic:
        Admissible remaining-cost estimate (default: the Γ label bound).
    vertex_order:
        Mapping order over ``V(r)``; defaults to insertion order.
    initial_upper_bound:
        Optional incumbent to start from (e.g. from
        :func:`repro.ged.approximate.bipartite_upper_bound`); when
        omitted it is computed automatically.  A tight incumbent prunes
        dramatically.  It MUST be a genuine upper bound (the cost of
        some achievable mapping) — an underestimate makes the result
        wrong, as the search reports ``min(incumbent, best found)``.
    budget:
        Optional effort cap (expansions and/or seconds, ticked once per
        descent).  On exhaustion the result carries
        ``budget_exhausted=True`` with a ``lower ≤ ged ≤ upper``
        bracket: ``lower`` is the admissible root estimate, ``upper``
        the cheapest achievable mapping in hand (see module docstring).

    Raises
    ------
    ParameterError
        On invalid threshold/order or mixed directedness.
    """
    if threshold is not None and threshold < 0:
        raise ParameterError(f"threshold must be >= 0, got {threshold}")
    if r.is_directed != s.is_directed:
        raise ParameterError("cannot compare a directed with an undirected graph")
    order: List[Vertex] = (
        list(r.vertices()) if vertex_order is None else list(vertex_order)
    )
    if set(order) != set(r.vertices()) or len(order) != r.num_vertices:
        raise ParameterError("vertex_order must be a permutation of V(r)")

    n = len(order)
    s_vertices = list(s.vertices())

    if initial_upper_bound is None:
        from repro.ged.approximate import bipartite_upper_bound

        incumbent = bipartite_upper_bound(r, s)
    else:
        incumbent = initial_upper_bound
    # The incumbent is a true achievable cost, so it may already answer
    # a threshold query; the cut level never needs to exceed tau + 1.
    cut = incumbent if threshold is None else min(incumbent, threshold + 1)

    if n == 0:
        distance = min(_completion_cost(s, frozenset()), incumbent)
        exceeded = threshold is not None and distance > threshold
        return DfsSearchResult(
            (threshold + 1) if exceeded else distance, 0, exceeded
        )

    best = cut
    # The cheapest *achievable* mapping seen — distinct from ``best``,
    # which is capped at ``τ+1`` (an unachievable sentinel) in threshold
    # mode.  This is the sound upper bound of a budget-exhausted run.
    best_achievable = incumbent
    root_f = heuristic(r, s, order, set(s_vertices))
    expanded = 0
    generated = 1  # the root state
    mapping: List[Optional[Vertex]] = []
    used: set = set()
    meter = budget.start() if budget is not None else None

    def descend(g: int) -> None:
        nonlocal best, best_achievable, expanded, generated
        if meter is not None and not meter.tick():
            raise SearchExhaustedError("budget exhausted")
        k = len(mapping)
        expanded += 1
        if k == n:
            total = g + _completion_cost(s, frozenset(used))
            if total < best_achievable:
                best_achievable = total
            if total < best:
                best = total
            return
        u = order[k]
        # Order successors by optimistic cost so good incumbents arrive
        # early (classic DF-GED move).
        successors: List[Tuple[int, Optional[Vertex]]] = []
        for v in s_vertices:
            if v in used:
                continue
            successors.append(
                (g + _extension_cost(r, s, order, tuple(mapping), u, v), v)
            )
        successors.append(
            (g + _extension_cost(r, s, order, tuple(mapping), u, None), None)
        )
        successors.sort(key=lambda pair: pair[0])
        for g2, v in successors:
            if g2 >= best:
                continue
            generated += 1
            if v is not None:
                used.add(v)
            mapping.append(v)
            h = heuristic(r, s, order[k + 1 :], set(s_vertices) - used)
            if g2 + h < best:
                descend(g2)
            mapping.pop()
            if v is not None:
                used.discard(v)

    try:
        descend(0)
    except SearchExhaustedError:
        return DfsSearchResult(
            best_achievable,
            expanded,
            False,
            generated,
            budget_exhausted=True,
            lower=root_f,
            upper=best_achievable,
        )

    if threshold is not None and best > threshold:
        return DfsSearchResult(threshold + 1, expanded, True, generated)
    return DfsSearchResult(best, expanded, False, generated)


def dfs_ged_compiled(
    cr: CompiledGraph,
    cs: CompiledGraph,
    threshold: Optional[int] = None,
    vertex_order: Optional[Sequence[int]] = None,
    budget: Optional[VerificationBudget] = None,
    improved_h: bool = False,
    q: int = 0,
    h_tau: int = 0,
    max_remaining: Optional[int] = 8,
    subgraph_cache: Optional[dict] = None,
    initial_upper_bound: Optional[int] = None,
) -> GedSearchResult:
    """DF-GED over compiled graphs — the integer twin of :func:`dfs_ged`.

    Runs the branch-and-bound with the per-depth remainder tables of
    :func:`repro.ged.compiled.compiled_ged_detailed`: the ``r``-side
    label/edge remainders are indexed by depth, the ``s``-side counters
    are maintained with O(deg) do/undo deltas along the current path —
    so, unlike the A*, the search never materializes a frontier and its
    resident state stays O(|V| + labels).

    Parameters mirror the compiled A*: ``improved_h``/``q``/``h_tau``/
    ``max_remaining``/``subgraph_cache`` configure the gated local-label
    heuristic term (Algorithm 8), ``budget`` degrades to a bounded
    verdict (``lower`` = admissible root ``f``, ``upper`` = cheapest
    achieved mapping), and the result is a
    :class:`~repro.ged.astar.GedSearchResult`.

    Raises
    ------
    ParameterError
        On a negative threshold, mismatched directedness, or an invalid
        vertex order.
    """
    if threshold is not None and threshold < 0:
        raise ParameterError(f"threshold must be >= 0, got {threshold}")
    if cr.directed != cs.directed:
        raise ParameterError("cannot compare a directed with an undirected graph")
    n, m = cr.n, cs.n
    order: List[int] = (
        list(range(n)) if vertex_order is None else list(vertex_order)
    )
    if sorted(order) != list(range(n)):
        raise ParameterError("vertex_order must be a permutation of V(r)")

    directed = cr.directed
    rvlab, svlab = cr.vlab, cs.vlab
    radj, sadj = cr.adj, cs.adj
    s_incident = cs.incident
    s_out, s_in = cs.out_nbrs, cs.in_nbrs
    num_s_edges = cs.num_edges

    if initial_upper_bound is None:
        from repro.ged.approximate import bipartite_upper_bound

        incumbent = bipartite_upper_bound(cr.graph, cs.graph)
    else:
        incumbent = initial_upper_bound

    if n == 0:
        distance = m + num_s_edges
        if threshold is not None and distance > threshold:
            return GedSearchResult(threshold + 1, 0, 0, True)
        return GedSearchResult(distance, 0, 0, False)

    # ---- per-search tables (as in the compiled A*) -----------------------
    num_vl = max(cr.max_vlab, cs.max_vlab) + 1
    num_el = max(cr.max_elab, cs.max_elab) + 1

    pos = [0] * n
    for d, u in enumerate(order):
        pos[u] = d
    rv_depth: List[List[int]] = [[0] * num_vl for _ in range(n + 1)]
    for d in range(n - 1, -1, -1):
        row = rv_depth[d]
        row[:] = rv_depth[d + 1]
        row[rvlab[order[d]]] += 1
    leave_buckets: List[List[int]] = [[] for _ in range(n + 1)]
    for x, y, el in cr.edge_list:
        depth = pos[x] if pos[x] > pos[y] else pos[y]
        leave_buckets[depth + 1].append(el)
    re_depth: List[List[int]] = [[0] * num_el for _ in range(n + 1)]
    resize = [0] * (n + 1)
    row = re_depth[0]
    for x, y, el in cr.edge_list:
        row[el] += 1
    resize[0] = len(cr.edge_list)
    for d in range(1, n + 1):
        row = re_depth[d]
        row[:] = re_depth[d - 1]
        for el in leave_buckets[d]:
            row[el] -= 1
        resize[d] = resize[d - 1] - len(leave_buckets[d])

    sv = [0] * num_vl
    for label_id in svlab:
        sv[label_id] += 1
    se = [0] * num_el
    for x, y, el in cs.edge_list:
        se[el] += 1

    gated = improved_h
    if gated:
        r_vertices = cr.vertices
        r_rest_sets: List[frozenset] = [
            frozenset(r_vertices[pos_v] for pos_v in order[d:])
            for d in range(n + 1)
        ]
    else:
        r_rest_sets = []
    gated_cache: Dict[Tuple[int, int], int] = {}
    if subgraph_cache is None:
        subgraph_cache = {}

    # ---- admissible root estimate (exhaustion lower bound) ---------------
    iv0 = 0
    rv0 = rv_depth[0]
    for label_id in range(num_vl):
        a, b = rv0[label_id], sv[label_id]
        iv0 += a if a < b else b
    ie0 = 0
    re0 = re_depth[0]
    for label_id in range(num_el):
        a, b = re0[label_id], se[label_id]
        ie0 += a if a < b else b
    root_f = (max(n, m) - iv0) + (max(resize[0], num_s_edges) - ie0)
    if gated and m and root_f <= h_tau and (
        max_remaining is None or (n <= max_remaining and m <= max_remaining)
    ):
        extra = _gated_extra(cr, cs, r_rest_sets[0], 0, q, h_tau, subgraph_cache)
        if extra > root_f:
            root_f = extra

    cut = incumbent if threshold is None else min(incumbent, threshold + 1)
    best = cut
    best_achievable = incumbent
    expanded = 0
    generated = 1  # the root state
    mapping: List[int] = []
    used = 0
    sv_size = m
    se_size = num_s_edges
    meter = budget.start() if budget is not None else None

    def descend(g: int) -> None:
        nonlocal best, best_achievable, expanded, generated
        nonlocal used, sv_size, se_size
        if meter is not None and not meter.tick():
            raise SearchExhaustedError("budget exhausted")
        k = len(mapping)
        expanded += 1
        if k == n:
            # The maintained remainder sizes *are* the completion cost.
            total = g + sv_size + se_size
            if total < best_achievable:
                best_achievable = total
            if total < best:
                best = total
            return

        k1 = k + 1
        u = order[k]
        u_row = u * n
        rv1 = rv_depth[k1]
        re1 = re_depth[k1]
        iv_base = 0
        for label_id in range(num_vl):
            a, b = rv1[label_id], sv[label_id]
            iv_base += a if a < b else b
        ie_base = 0
        for label_id in range(num_el):
            a, b = re1[label_id], se[label_id]
            ie_base += a if a < b else b
        rvsize1 = n - k1
        resize1 = resize[k1]

        u_edges = [
            (j, radj[u_row + order[j]])
            for j in range(k)
            if radj[u_row + order[j]]
        ]
        u_redges = (
            [
                (j, radj[order[j] * n + u])
                for j in range(k)
                if radj[order[j] * n + u]
            ]
            if directed
            else u_edges
        )
        imap = [-1] * m
        for j, w in enumerate(mapping):
            if w >= 0:
                imap[w] = j
        eps_delta = len(u_edges) + (len(u_redges) if directed else 0)

        targets = [v for v in range(m) if not (used >> v) & 1]
        targets.append(-1)
        successors: List[Tuple[int, int, int]] = []
        for v in targets:
            # --- extension cost (inlined integer form) -------------------
            if v < 0:
                delta = 1 + eps_delta
            else:
                delta = 0 if rvlab[u] == svlab[v] else 1
                v_row = v * m
                for j, rl in u_edges:
                    w = mapping[j]
                    if w < 0 or sadj[v_row + w] != rl:
                        delta += 1
                for w2 in s_out[v]:
                    j = imap[w2]
                    if j >= 0 and radj[u_row + order[j]] == 0:
                        delta += 1
                if directed:
                    for j, rl in u_redges:
                        w = mapping[j]
                        if w < 0 or sadj[w * m + v] != rl:
                            delta += 1
                    for w2 in s_in[v]:
                        j = imap[w2]
                        if j >= 0 and radj[order[j] * n + u] == 0:
                            delta += 1
            g2 = g + delta
            if g2 >= best:
                continue

            # --- child heuristic from the incremental remainders ---------
            if v < 0:
                used2 = used
                sv_size2 = sv_size
                se_size2 = se_size
                iv2 = iv_base
                ie2 = ie_base
            else:
                used2 = used | (1 << v)
                sv_size2 = sv_size - 1
                label_id = svlab[v]
                iv2 = iv_base - (1 if sv[label_id] <= rv1[label_id] else 0)
                ie2 = ie_base
                removed = 0
                for w, el in s_incident[v]:
                    if (used >> w) & 1:
                        if se[el] <= re1[el]:
                            ie2 -= 1
                        se[el] -= 1
                        removed += 1
                se_size2 = se_size - removed
                if removed:
                    for w, el in s_incident[v]:
                        if (used >> w) & 1:
                            se[el] += 1

            if k1 == n:
                h2 = sv_size2 + se_size2
            else:
                gv = rvsize1 if rvsize1 > sv_size2 else sv_size2
                ge = resize1 if resize1 > se_size2 else se_size2
                h2 = (gv - iv2) + (ge - ie2)
                if gated and h2 <= h_tau and sv_size2 and (
                    max_remaining is None
                    or (
                        n - k1 <= max_remaining
                        and sv_size2 <= max_remaining
                    )
                ):
                    gate_key = (k1, used2)
                    extra = gated_cache.get(gate_key)
                    if extra is None:
                        extra = _gated_extra(
                            cr,
                            cs,
                            r_rest_sets[k1],
                            used2,
                            q,
                            h_tau,
                            subgraph_cache,
                        )
                        gated_cache[gate_key] = extra
                    if extra > h2:
                        h2 = extra
            if g2 + h2 >= best:
                continue
            successors.append((g2, h2, v))

        # Cheapest extension first (stable, so ties keep target order).
        successors.sort(key=lambda triple: triple[0])
        for g2, h2, v in successors:
            # ``best`` may have improved since generation — re-check.
            if g2 >= best or g2 + h2 >= best:
                continue
            generated += 1
            mapping.append(v)
            if v >= 0:
                used |= 1 << v
                sv[svlab[v]] -= 1
                sv_size -= 1
                for w, el in s_incident[v]:
                    if (used >> w) & 1 and w != v:
                        se[el] -= 1
                        se_size -= 1
            descend(g2)
            mapping.pop()
            if v >= 0:
                for w, el in s_incident[v]:
                    if (used >> w) & 1 and w != v:
                        se[el] += 1
                        se_size += 1
                sv[svlab[v]] += 1
                sv_size += 1
                used &= ~(1 << v)

    try:
        if root_f < best:
            descend(0)
    except SearchExhaustedError:
        return GedSearchResult(
            best_achievable,
            expanded,
            generated,
            False,
            budget_exhausted=True,
            lower=root_f,
            upper=best_achievable,
        )

    if threshold is not None and best > threshold:
        return GedSearchResult(threshold + 1, expanded, generated, True)
    return GedSearchResult(best, expanded, generated, False)
