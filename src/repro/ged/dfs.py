"""Depth-first branch-and-bound graph edit distance (DF-GED).

The best-first A* of :mod:`repro.ged.astar` keeps its whole frontier in
memory; the classic alternative (Abu-Aisheh et al.'s DF-GED family)
explores the same fixed-order mapping tree depth-first, keeping only
the current path.  An incumbent upper bound — seeded from the bipartite
assignment approximation, exactly how practical DF-GED implementations
do it — prunes subtrees whose ``g + h`` cannot improve on it.

Properties:

* memory is O(|V|) instead of the A* frontier;
* with an admissible heuristic the result is exact;
* a ``threshold`` caps the incumbent, yielding the same
  "``τ+1`` means greater than ``τ``" contract as the A* verifier.

The module exists both as a practical alternative verifier (usable via
``verify_pair`` through the benchmarks' ablation) and as an independent
implementation to cross-check the A* search in the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.ged.astar import _completion_cost, _extension_cost
from repro.ged.heuristics import Heuristic, label_heuristic
from repro.graph.graph import Graph, Vertex

__all__ = ["dfs_ged", "DfsSearchResult"]


class DfsSearchResult:
    """Outcome of a DF-GED run (mirrors ``GedSearchResult``)."""

    __slots__ = ("distance", "expanded", "exceeded_threshold")

    def __init__(self, distance: int, expanded: int, exceeded: bool) -> None:
        self.distance = distance
        self.expanded = expanded
        self.exceeded_threshold = exceeded

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DfsSearchResult(distance={self.distance}, "
            f"expanded={self.expanded}, exceeded={self.exceeded_threshold})"
        )


def dfs_ged(
    r: Graph,
    s: Graph,
    threshold: Optional[int] = None,
    heuristic: Heuristic = label_heuristic,
    vertex_order: Optional[Sequence[Vertex]] = None,
    initial_upper_bound: Optional[int] = None,
) -> DfsSearchResult:
    """Exact GED by depth-first branch-and-bound.

    Parameters
    ----------
    threshold:
        As in the A* verifier: prune above ``threshold`` and report
        ``threshold + 1`` when the distance exceeds it.
    heuristic:
        Admissible remaining-cost estimate (default: the Γ label bound).
    vertex_order:
        Mapping order over ``V(r)``; defaults to insertion order.
    initial_upper_bound:
        Optional incumbent to start from (e.g. from
        :func:`repro.ged.approximate.bipartite_upper_bound`); when
        omitted it is computed automatically.  A tight incumbent prunes
        dramatically.  It MUST be a genuine upper bound (the cost of
        some achievable mapping) — an underestimate makes the result
        wrong, as the search reports ``min(incumbent, best found)``.

    Raises
    ------
    ParameterError
        On invalid threshold/order or mixed directedness.
    """
    if threshold is not None and threshold < 0:
        raise ParameterError(f"threshold must be >= 0, got {threshold}")
    if r.is_directed != s.is_directed:
        raise ParameterError("cannot compare a directed with an undirected graph")
    order: List[Vertex] = (
        list(r.vertices()) if vertex_order is None else list(vertex_order)
    )
    if set(order) != set(r.vertices()) or len(order) != r.num_vertices:
        raise ParameterError("vertex_order must be a permutation of V(r)")

    n = len(order)
    s_vertices = list(s.vertices())

    if initial_upper_bound is None:
        from repro.ged.approximate import bipartite_upper_bound

        incumbent = bipartite_upper_bound(r, s)
    else:
        incumbent = initial_upper_bound
    # The incumbent is a true achievable cost, so it may already answer
    # a threshold query; the cut level never needs to exceed tau + 1.
    cut = incumbent if threshold is None else min(incumbent, threshold + 1)

    if n == 0:
        distance = min(_completion_cost(s, frozenset()), incumbent)
        exceeded = threshold is not None and distance > threshold
        return DfsSearchResult(
            (threshold + 1) if exceeded else distance, 0, exceeded
        )

    best = cut
    expanded = 0
    mapping: List[Optional[Vertex]] = []
    used: set = set()

    def descend(g: int) -> None:
        nonlocal best, expanded
        k = len(mapping)
        expanded += 1
        if k == n:
            total = g + _completion_cost(s, frozenset(used))
            if total < best:
                best = total
            return
        u = order[k]
        # Order successors by optimistic cost so good incumbents arrive
        # early (classic DF-GED move).
        successors: List[Tuple[int, Optional[Vertex]]] = []
        for v in s_vertices:
            if v in used:
                continue
            successors.append(
                (g + _extension_cost(r, s, order, tuple(mapping), u, v), v)
            )
        successors.append(
            (g + _extension_cost(r, s, order, tuple(mapping), u, None), None)
        )
        successors.sort(key=lambda pair: pair[0])
        for g2, v in successors:
            if g2 >= best:
                continue
            if v is not None:
                used.add(v)
            mapping.append(v)
            h = heuristic(r, s, order[k + 1 :], set(s_vertices) - used)
            if g2 + h < best:
                descend(g2)
            mapping.pop()
            if v is not None:
                used.discard(v)

    descend(0)

    if threshold is not None and best > threshold:
        return DfsSearchResult(threshold + 1, expanded, True)
    return DfsSearchResult(best, expanded, False)
