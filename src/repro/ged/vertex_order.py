"""Mapping orders for the A* search (Algorithm 7).

A* maps the vertices of ``r`` in a fixed order; the order strongly
affects how early edit operations (and thus cost, and thus pruning) are
discovered.  The paper's *improved order* puts vertices covered by
mismatching q-grams first — they are where the edit operations live —
component by component, each in spanning-tree order so edge edits
surface as soon as both endpoints are mapped.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.grams.labels import connected_gram_components
from repro.grams.qgrams import QGram
from repro.graph.graph import Graph, Vertex

__all__ = ["input_vertex_order", "spanning_tree_vertex_order", "mismatch_vertex_order"]


def input_vertex_order(r: Graph) -> List[Vertex]:
    """Vertices in insertion order — the unoptimized baseline ("A*")."""
    return list(r.vertices())


def spanning_tree_vertex_order(r: Graph) -> List[Vertex]:
    """All vertices in BFS spanning-tree order."""
    return r.spanning_tree_order()


def mismatch_vertex_order(r: Graph, mismatch_grams: Sequence[QGram]) -> List[Vertex]:
    """The paper's ``DetermineVertexOrder`` (Algorithm 7).

    Vertices contained in at least one mismatching q-gram come first,
    grouped by connected component and ordered along a spanning tree
    within each; the remaining vertices follow, also in spanning-tree
    order.
    """
    order: List[Vertex] = []
    placed: Set[Vertex] = set()
    for component in connected_gram_components(mismatch_grams):
        vertices: Set[Vertex] = set()
        for gram in component:
            vertices.update(gram.path)
        for v in r.spanning_tree_order(within=vertices):
            if v not in placed:
                placed.add(v)
                order.append(v)
    for v in r.spanning_tree_order():
        if v not in placed:
            placed.add(v)
            order.append(v)
    return order
