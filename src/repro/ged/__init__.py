"""Graph edit distance computation: A* search, heuristics, mapping costs."""

from repro.ged.approximate import (
    beam_search_ged,
    bipartite_upper_bound,
    ged_bounds,
    label_lower_bound,
)
from repro.ged.astar import (
    GedSearchResult,
    ged_within,
    graph_edit_distance,
    graph_edit_distance_detailed,
)
from repro.ged.compiled import (
    CompiledGraph,
    LabelInterner,
    VerificationCache,
    compile_graph,
    compiled_ged_detailed,
)
from repro.ged.cost import induced_edit_cost
from repro.ged.dfs import DfsSearchResult, dfs_ged
from repro.ged.heuristics import (
    Heuristic,
    label_heuristic,
    make_local_label_heuristic,
    zero_heuristic,
)
from repro.ged.reference import brute_force_ged
from repro.ged.weighted import CostModel, weighted_ged, weighted_induced_cost
from repro.ged.vertex_order import (
    input_vertex_order,
    mismatch_vertex_order,
    spanning_tree_vertex_order,
)

__all__ = [
    "beam_search_ged",
    "bipartite_upper_bound",
    "ged_bounds",
    "label_lower_bound",
    "graph_edit_distance",
    "graph_edit_distance_detailed",
    "ged_within",
    "GedSearchResult",
    "CompiledGraph",
    "LabelInterner",
    "VerificationCache",
    "compile_graph",
    "compiled_ged_detailed",
    "induced_edit_cost",
    "dfs_ged",
    "DfsSearchResult",
    "brute_force_ged",
    "CostModel",
    "weighted_ged",
    "weighted_induced_cost",
    "Heuristic",
    "zero_heuristic",
    "label_heuristic",
    "make_local_label_heuristic",
    "input_vertex_order",
    "spanning_tree_vertex_order",
    "mismatch_vertex_order",
]
