"""The staged execution engine behind every join/search entry point.

This package turns the GSimJoin pipeline into an explicit, inspectable
machine: :func:`~repro.engine.plan.build_plan` assembles a
:class:`~repro.engine.plan.JoinPlan` — an ordered list of first-class
stage objects (:mod:`repro.engine.stages`) — from a
:class:`~repro.engine.options.GSimJoinOptions`, and one
:class:`~repro.engine.executor.Executor` drives that plan for the
self-join, the R×S join, the parallel join and the search index alike,
threading verification budgets, the compiled-verifier cache, resume
journals and fault injection uniformly.  Each stage reports survivor
counts and wall time into
:class:`~repro.engine.result.StageStatistics` rows on the run's
:class:`~repro.engine.result.JoinStatistics`.

The public API (``repro.core`` / ``repro``) is unchanged — the four
entry points are thin wrappers over this engine — but advanced callers
can build and inspect plans directly, and
``GSimJoinOptions(plan=...)`` reorders the per-pair filter cascade (see
``docs/ARCHITECTURE.md``).
"""

from repro.engine.executor import (
    Executor,
    execute_rs_join,
    execute_self_join,
)
from repro.engine.options import GSimJoinOptions
from repro.engine.parallel import execute_parallel_join
from repro.engine.plan import DEFAULT_FILTER_ORDER, JoinPlan, build_plan
from repro.engine.sharded import execute_sharded_join, result_fingerprint
from repro.engine.result import (
    BoundedPair,
    JoinResult,
    JoinStatistics,
    StageStatistics,
)
from repro.engine.verify import VerifyOutcome, verify_pair

__all__ = [
    "Executor",
    "execute_self_join",
    "execute_rs_join",
    "execute_parallel_join",
    "execute_sharded_join",
    "result_fingerprint",
    "GSimJoinOptions",
    "JoinPlan",
    "build_plan",
    "DEFAULT_FILTER_ORDER",
    "BoundedPair",
    "JoinResult",
    "JoinStatistics",
    "StageStatistics",
    "VerifyOutcome",
    "verify_pair",
]
