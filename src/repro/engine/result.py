"""Join results and the per-phase / per-stage statistics.

Every figure of the paper's evaluation section is a projection of these
numbers: *Cand-1* (pairs surviving index probing + size filtering),
*Cand-2* (pairs reaching the GED computation), result pairs, average
prefix length, index size, and the three phase timings (index
construction / candidate generation / GED computation).

The staged execution engine additionally reports one
:class:`StageStatistics` row per plan stage (``JoinStatistics.stages``)
— the paper's Figure 7-style filter-breakdown numbers: how many units
entered each stage, how many survived, and how much wall time the stage
took.  The rows are listed in plan order and surfaced by
``repro.reporting.result_to_dict`` and the CLI's ``--explain-plan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, NamedTuple, Optional, Tuple

__all__ = ["JoinStatistics", "JoinResult", "BoundedPair", "StageStatistics"]


class BoundedPair(NamedTuple):
    """A candidate pair the join could not decide exactly.

    Produced by budgeted verification (``lower ≤ ged ≤ upper`` brackets
    ``tau`` — see ``docs/ROBUSTNESS.md``) or by the parallel executor's
    in-process fallback when a pair kept failing (``reason="error"``,
    bounds unknown).  ``upper=None`` means no upper bound was obtained.
    """

    r_id: Hashable
    s_id: Hashable
    lower: Optional[int]
    upper: Optional[int]
    reason: str = "budget"


@dataclass
class StageStatistics:
    """Survivor counts and wall time of one plan stage.

    ``input`` counts the units that entered the stage and ``survivors``
    the units it passed downstream; the unit depends on the stage's
    ``role`` (graphs for ``prepare``/``prefix`` stages, posting/probe
    encounters for candidate generation, candidate pairs for the
    pair-filter cascade and verification).  ``seconds`` is the wall time
    the stage itself consumed; for stages whose work is fused into a
    neighbouring loop (the size filter runs inside the candidate probe)
    the time is attributed to the fused stage and documented as such in
    ``docs/ARCHITECTURE.md``.  Replayed journal records and parallel
    worker records contribute counts (and GED seconds to the verify
    stage) but no filter wall time — filters re-run nowhere on replay.
    """

    name: str
    role: str
    input: int = 0
    survivors: int = 0
    seconds: float = 0.0
    estimated_selectivity: Optional[float] = None
    #: planner-estimated pass rate (``plan="auto"`` runs only)
    estimated_cost: Optional[float] = None
    #: planner unit cost in relative units (``plan="auto"`` runs only)

    @property
    def pruned(self) -> int:
        """Units the stage removed (``input - survivors``)."""
        return self.input - self.survivors

    @property
    def observed_selectivity(self) -> Optional[float]:
        """Observed pass rate (``survivors / input``); ``None`` if idle."""
        if self.input <= 0:
            return None
        return self.survivors / self.input


@dataclass
class JoinStatistics:
    """Counters and timings collected during one join run."""

    num_graphs: int = 0
    tau: int = 0
    q: int = 0

    cand1: int = 0  #: candidate pairs after probing + size filtering
    cand2: int = 0  #: pairs that reached the GED computation
    results: int = 0  #: pairs in the join result

    pruned_by_size: int = 0
    pruned_by_global_label: int = 0
    pruned_by_count: int = 0
    pruned_by_local_label: int = 0

    total_prefix_length: int = 0
    unprunable_graphs: int = 0
    index_distinct_keys: int = 0
    index_postings: int = 0
    index_bytes: int = 0

    index_time: float = 0.0  #: q-gram extraction + ordering + prefix + inserts
    candidate_time: float = 0.0  #: index probing + size filtering
    verify_time: float = 0.0  #: Verify incl. filters and GED
    ged_time: float = 0.0  #: GED A* searches only
    ged_calls: int = 0
    ged_expansions: int = 0
    compile_time: float = 0.0  #: compiled-verifier graph compilation (⊂ ged_time)
    compiled_graphs: int = 0  #: distinct graphs compiled by the verifier cache

    undecided: int = 0  #: pairs whose budget-bounded verdict spans tau
    memo_hits: int = 0  #: pairs answered by the verdict memo, no search run
    verify_backends: Dict[str, int] = field(default_factory=dict)
    #: verify calls per portfolio backend (``"memo"`` for memo answers)
    replayed_pairs: int = 0  #: pairs skipped on resume via the journal
    chunk_retries: int = 0  #: parallel chunks re-dispatched after a failure
    fallback_pairs: int = 0  #: pairs verified in-process after max_retries
    failed_pairs: int = 0  #: pairs unverifiable even in the fallback

    stages: List[StageStatistics] = field(default_factory=list)
    #: one row per plan stage, in plan order (filled by the engine)

    replan_events: List[Dict[str, Any]] = field(default_factory=list)
    #: adaptive-planner re-plan events (``plan="auto"`` runs only), in
    #: order: ``{"pair_index", "trigger", "from", "to",
    #: "estimated_cost_before", "estimated_cost_after"}``

    plan_advice: Dict[str, Any] = field(default_factory=dict)
    #: advisory parameter recommendation from the planner (never
    #: applied at runtime — see ``repro.engine.planner.advise_parameters``)

    @property
    def total_time(self) -> float:
        """Summed phase wall time (index + candidates + verify)."""
        return self.index_time + self.candidate_time + self.verify_time

    @property
    def avg_prefix_length(self) -> float:
        """Mean indexed prefix length over the collection."""
        return self.total_prefix_length / self.num_graphs if self.num_graphs else 0.0

    def stage_table(self) -> str:
        """The per-stage breakdown as an aligned text table.

        When the adaptive planner annotated the stages (``plan="auto"``
        runs), three columns are appended: the planner's estimated pass
        rate (``est.sel``), the observed pass rate (``obs.sel``) and
        the estimated unit cost in relative units (``est.cost``).
        """
        if not self.stages:
            return "(no stage statistics recorded)"
        planned = any(
            s.estimated_selectivity is not None for s in self.stages
        )
        header = ["stage", "role", "input", "survivors", "pruned", "seconds"]
        if planned:
            header += ["est.sel", "obs.sel", "est.cost"]
        rows = [tuple(header)]
        for s in self.stages:
            row = [s.name, s.role, str(s.input), str(s.survivors),
                   str(s.pruned), f"{s.seconds:.4f}"]
            if planned:
                est = s.estimated_selectivity
                obs = s.observed_selectivity
                cost = s.estimated_cost
                row += [
                    "-" if est is None else f"{est:.3f}",
                    "-" if obs is None else f"{obs:.3f}",
                    "-" if cost is None else f"{cost:.2f}",
                ]
            rows.append(tuple(row))
        widths = [
            max(len(row[col]) for row in rows)
            for col in range(len(rows[0]))
        ]
        lines = []
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
                .rstrip()
            )
        if self.verify_backends:
            breakdown = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.verify_backends.items())
            )
            lines.append(f"verify backends: {breakdown}")
        if self.replan_events:
            lines.append("re-plan events:")
            for event in self.replan_events:
                lines.append(
                    f"  pair {event['pair_index']}: {event['trigger']} "
                    f"{' -> '.join(event['to'])} "
                    f"(est. cost {event['estimated_cost_before']:.2f} "
                    f"-> {event['estimated_cost_after']:.2f})"
                )
        return "\n".join(lines)

    def plan_report(self) -> Dict[str, Any]:
        """The planner-facing view of the run as a JSON-ready dict.

        Consumed by the CLI's ``--explain-plan=json``: one entry per
        stage with estimated vs observed selectivity and cost, the
        re-plan events with their triggers, and any advisory parameter
        recommendation.
        """
        return {
            "stages": [
                {
                    "name": s.name,
                    "role": s.role,
                    "input": s.input,
                    "survivors": s.survivors,
                    "pruned": s.pruned,
                    "seconds": s.seconds,
                    "estimated_selectivity": s.estimated_selectivity,
                    "observed_selectivity": s.observed_selectivity,
                    "estimated_cost": s.estimated_cost,
                }
                for s in self.stages
            ],
            "replan_events": list(self.replan_events),
            "plan_advice": dict(self.plan_advice),
            "verify_backends": dict(self.verify_backends),
            "memo_hits": self.memo_hits,
        }

    def summary(self) -> str:
        """One-line human-readable summary (used by examples/benchmarks)."""
        text = (
            f"n={self.num_graphs} tau={self.tau} q={self.q} | "
            f"cand1={self.cand1} cand2={self.cand2} results={self.results} | "
            f"avg prefix={self.avg_prefix_length:.1f} "
            f"index={self.index_bytes / 1024.0:.1f}kB | "
            f"t_index={self.index_time:.3f}s t_cand={self.candidate_time:.3f}s "
            f"t_verify={self.verify_time:.3f}s (ged {self.ged_time:.3f}s, "
            f"{self.ged_calls} calls)"
        )
        if self.undecided or self.failed_pairs:
            text += (
                f" | undecided={self.undecided} failed={self.failed_pairs}"
            )
        return text


@dataclass
class JoinResult:
    """Result pairs (as graph-id tuples) plus the run's statistics.

    ``undecided`` is the budgeted-execution channel: pairs whose exact
    verdict the verification budget (or the fault-recovery fallback)
    could not produce, each with the best known ``lower``/``upper`` GED
    bounds.  Without a budget and without faults it is always empty.
    """

    pairs: List[Tuple[Hashable, Hashable]] = field(default_factory=list)
    stats: JoinStatistics = field(default_factory=JoinStatistics)
    undecided: List[BoundedPair] = field(default_factory=list)

    def pair_set(self) -> set:
        """The result pairs as a set for comparisons in tests."""
        return set(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)
