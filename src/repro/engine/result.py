"""Join results and the per-phase / per-stage statistics.

Every figure of the paper's evaluation section is a projection of these
numbers: *Cand-1* (pairs surviving index probing + size filtering),
*Cand-2* (pairs reaching the GED computation), result pairs, average
prefix length, index size, and the three phase timings (index
construction / candidate generation / GED computation).

The staged execution engine additionally reports one
:class:`StageStatistics` row per plan stage (``JoinStatistics.stages``)
— the paper's Figure 7-style filter-breakdown numbers: how many units
entered each stage, how many survived, and how much wall time the stage
took.  The rows are listed in plan order and surfaced by
``repro.reporting.result_to_dict`` and the CLI's ``--explain-plan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, NamedTuple, Optional, Tuple

__all__ = ["JoinStatistics", "JoinResult", "BoundedPair", "StageStatistics"]


class BoundedPair(NamedTuple):
    """A candidate pair the join could not decide exactly.

    Produced by budgeted verification (``lower ≤ ged ≤ upper`` brackets
    ``tau`` — see ``docs/ROBUSTNESS.md``) or by the parallel executor's
    in-process fallback when a pair kept failing (``reason="error"``,
    bounds unknown).  ``upper=None`` means no upper bound was obtained.
    """

    r_id: Hashable
    s_id: Hashable
    lower: Optional[int]
    upper: Optional[int]
    reason: str = "budget"


@dataclass
class StageStatistics:
    """Survivor counts and wall time of one plan stage.

    ``input`` counts the units that entered the stage and ``survivors``
    the units it passed downstream; the unit depends on the stage's
    ``role`` (graphs for ``prepare``/``prefix`` stages, posting/probe
    encounters for candidate generation, candidate pairs for the
    pair-filter cascade and verification).  ``seconds`` is the wall time
    the stage itself consumed; for stages whose work is fused into a
    neighbouring loop (the size filter runs inside the candidate probe)
    the time is attributed to the fused stage and documented as such in
    ``docs/ARCHITECTURE.md``.  Replayed journal records and parallel
    worker records contribute counts (and GED seconds to the verify
    stage) but no filter wall time — filters re-run nowhere on replay.
    """

    name: str
    role: str
    input: int = 0
    survivors: int = 0
    seconds: float = 0.0

    @property
    def pruned(self) -> int:
        """Units the stage removed (``input - survivors``)."""
        return self.input - self.survivors


@dataclass
class JoinStatistics:
    """Counters and timings collected during one join run."""

    num_graphs: int = 0
    tau: int = 0
    q: int = 0

    cand1: int = 0  #: candidate pairs after probing + size filtering
    cand2: int = 0  #: pairs that reached the GED computation
    results: int = 0  #: pairs in the join result

    pruned_by_size: int = 0
    pruned_by_global_label: int = 0
    pruned_by_count: int = 0
    pruned_by_local_label: int = 0

    total_prefix_length: int = 0
    unprunable_graphs: int = 0
    index_distinct_keys: int = 0
    index_postings: int = 0
    index_bytes: int = 0

    index_time: float = 0.0  #: q-gram extraction + ordering + prefix + inserts
    candidate_time: float = 0.0  #: index probing + size filtering
    verify_time: float = 0.0  #: Verify incl. filters and GED
    ged_time: float = 0.0  #: GED A* searches only
    ged_calls: int = 0
    ged_expansions: int = 0
    compile_time: float = 0.0  #: compiled-verifier graph compilation (⊂ ged_time)
    compiled_graphs: int = 0  #: distinct graphs compiled by the verifier cache

    undecided: int = 0  #: pairs whose budget-bounded verdict spans tau
    replayed_pairs: int = 0  #: pairs skipped on resume via the journal
    chunk_retries: int = 0  #: parallel chunks re-dispatched after a failure
    fallback_pairs: int = 0  #: pairs verified in-process after max_retries
    failed_pairs: int = 0  #: pairs unverifiable even in the fallback

    stages: List[StageStatistics] = field(default_factory=list)
    #: one row per plan stage, in plan order (filled by the engine)

    @property
    def total_time(self) -> float:
        """Summed phase wall time (index + candidates + verify)."""
        return self.index_time + self.candidate_time + self.verify_time

    @property
    def avg_prefix_length(self) -> float:
        """Mean indexed prefix length over the collection."""
        return self.total_prefix_length / self.num_graphs if self.num_graphs else 0.0

    def stage_table(self) -> str:
        """The per-stage breakdown as an aligned text table."""
        if not self.stages:
            return "(no stage statistics recorded)"
        rows = [("stage", "role", "input", "survivors", "pruned", "seconds")]
        for s in self.stages:
            rows.append(
                (s.name, s.role, str(s.input), str(s.survivors),
                 str(s.pruned), f"{s.seconds:.4f}")
            )
        widths = [max(len(row[col]) for row in rows) for col in range(6)]
        lines = []
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
                .rstrip()
            )
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line human-readable summary (used by examples/benchmarks)."""
        text = (
            f"n={self.num_graphs} tau={self.tau} q={self.q} | "
            f"cand1={self.cand1} cand2={self.cand2} results={self.results} | "
            f"avg prefix={self.avg_prefix_length:.1f} "
            f"index={self.index_bytes / 1024.0:.1f}kB | "
            f"t_index={self.index_time:.3f}s t_cand={self.candidate_time:.3f}s "
            f"t_verify={self.verify_time:.3f}s (ged {self.ged_time:.3f}s, "
            f"{self.ged_calls} calls)"
        )
        if self.undecided or self.failed_pairs:
            text += (
                f" | undecided={self.undecided} failed={self.failed_pairs}"
            )
        return text


@dataclass
class JoinResult:
    """Result pairs (as graph-id tuples) plus the run's statistics.

    ``undecided`` is the budgeted-execution channel: pairs whose exact
    verdict the verification budget (or the fault-recovery fallback)
    could not produce, each with the best known ``lower``/``upper`` GED
    bounds.  Without a budget and without faults it is always empty.
    """

    pairs: List[Tuple[Hashable, Hashable]] = field(default_factory=list)
    stats: JoinStatistics = field(default_factory=JoinStatistics)
    undecided: List[BoundedPair] = field(default_factory=list)

    def pair_set(self) -> set:
        """The result pairs as a set for comparisons in tests."""
        return set(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)
