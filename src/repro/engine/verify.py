"""Candidate verification (Section VI, Algorithm 6).

Candidates pass through a cascade of increasingly expensive filters —
global label filtering, count filtering (via mismatching q-gram counts),
local label filtering — and only survivors reach the A*-based GED
computation, itself accelerated by the improved vertex order
(Algorithm 7) and improved heuristic (Algorithm 8) when enabled.

The cascade is built from the first-class stage objects of
:mod:`repro.engine.stages`; :func:`verify_pair` keeps the historical
flat-argument signature and simply runs the corresponding stage
cascade, so standalone callers and the engine's executor share one
implementation.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Optional, Tuple

from repro.engine.result import JoinStatistics
from repro.engine.stages import (
    CountFilter,
    GlobalLabelFilter,
    LabelFilter,
    MulticoverFilter,
    PairContext,
    PairFilter,
    Verify,
    VerifyOutcome,
    run_cascade,
)
from repro.ged.compiled import VerificationCache
from repro.grams.qgrams import QGramProfile
from repro.runtime.budget import VerificationBudget

__all__ = ["VerifyOutcome", "verify_pair"]

LabelPair = Tuple


@lru_cache(maxsize=None)
def _filters_for(
    use_local_label: bool, use_multicover: bool
) -> Tuple[PairFilter, ...]:
    """The default-order cascade for one flag combination (cached)."""
    filters = [GlobalLabelFilter(), CountFilter()]
    if use_local_label:
        filters.append(LabelFilter())
    if use_multicover:
        filters.append(MulticoverFilter())
    return tuple(filters)


_FILTER_CLASSES = {
    "global-label-filter": GlobalLabelFilter,
    "count-filter": CountFilter,
    "local-label-filter": LabelFilter,
    "multicover-filter": MulticoverFilter,
}


@lru_cache(maxsize=None)
def _filters_for_order(order: Tuple[str, ...]) -> Tuple[PairFilter, ...]:
    """The cascade for an explicit stage-name order (cached).

    Used by the parallel workers when the driver ships a non-default
    (e.g. planner-calibrated) cascade order; ``order`` is assumed
    already validated by :func:`repro.engine.plan.build_plan`.
    """
    return tuple(_FILTER_CLASSES[name]() for name in order)


@lru_cache(maxsize=None)
def _verify_for(
    verifier: str, improved_order: bool, improved_h: bool, anchor_bound: bool
) -> Verify:
    """The verify stage for one backend configuration (cached)."""
    return Verify(
        verifier=verifier,
        improved_order=improved_order,
        improved_h=improved_h,
        anchor_bound=anchor_bound,
    )


def verify_pair(
    p_r: QGramProfile,
    p_s: QGramProfile,
    tau: int,
    labels_r: LabelPair,
    labels_s: LabelPair,
    use_local_label: bool,
    improved_order: bool,
    improved_h: bool,
    stats: Optional[JoinStatistics] = None,
    use_multicover: bool = False,
    verifier: str = "astar",
    budget: Optional[VerificationBudget] = None,
    cache: Optional[VerificationCache] = None,
    anchor_bound: bool = False,
    hinted: Optional[FrozenSet[str]] = None,
    plan_order: Optional[Tuple[str, ...]] = None,
) -> VerifyOutcome:
    """Run Algorithm 6 on one candidate pair.

    Parameters mirror the join variants: ``use_local_label`` enables the
    ε₄/ε₅ tests, ``improved_order``/``improved_h`` select the GED
    optimizations of Section VI-B.  ``use_multicover`` additionally
    applies the set-multicover minimum-edit bound over partially matched
    surplus keys — an extension beyond the paper's Algorithm 5 (see
    :func:`repro.grams.labels.multicover_min_edit_bound`).
    ``stats``, when given, accrues the Cand-2 counter, filter prune
    counters, and GED timings.

    ``verifier`` names a portfolio backend (resolved through the
    registry of :mod:`repro.ged.portfolio`): ``"compiled"`` (the
    integer-array A* of :mod:`repro.ged.compiled`, bit-identical to the
    object backend), ``"astar"``/``"object"`` (the object-graph A* of
    :mod:`repro.ged.astar`; two names for one backend), ``"dfs"``
    (budget-aware branch-and-bound), or ``"auto"`` (per-pair hardness
    dispatch).  ``cache`` supplies the per-collection
    :class:`VerificationCache` — compiled-graph reuse plus the
    pair-level verdict memo (one is created ad hoc when omitted, which
    forfeits cross-pair reuse).  ``anchor_bound`` enables the compiled
    backend's optional anchor-aware lower bound — same results,
    potentially fewer expansions.

    ``budget`` caps the search effort; on exhaustion the outcome is
    decided from the bounded verdict when possible (``upper <= tau``
    accepts, ``lower > tau`` rejects) and marked ``undecided``
    otherwise — never an exception or a hang.  Every registered
    backend honours budgets (the DFS backend returns its admissible
    root bound and bipartite incumbent as the bracket).

    ``hinted`` names cascade stages the batch kernels of
    :mod:`repro.engine.batch` already proved passed for this pair; they
    are skipped without re-evaluation (and without prune-counter
    effect — a hinted stage by definition did not prune).

    ``plan_order``, when given, runs the cascade in that explicit
    stage-name order instead of the default — the parallel workers use
    it to honour a driver-shipped (planner-calibrated) plan.  Every
    order yields the same verdict; only prune attribution shifts.

    Raises
    ------
    ParameterError
        On an unknown verifier, or a requested feature (``budget``,
        ``anchor_bound``) the resolved backend's declared capabilities
        exclude.
    """
    ctx = PairContext(p_r, p_s, tau, labels_r, labels_s)
    filters = (
        _filters_for_order(plan_order)
        if plan_order is not None
        else _filters_for(use_local_label, use_multicover)
    )
    verify = _verify_for(verifier, improved_order, improved_h, anchor_bound)
    return run_cascade(
        filters, verify, ctx, stats=stats, budget=budget, cache=cache,
        hinted=hinted,
    )
