"""Multi-core GSimJoin with a fault-tolerant verification executor.

The join's phases have very different parallelism profiles: index
construction and candidate generation are cheap and inherently
sequential (the index-nested-loop consumes its own output), while
verification — the filter cascade plus A* — dominates the runtime and
is embarrassingly parallel across candidate pairs.
:func:`execute_parallel_join` therefore runs Algorithm 1's scan once to
*collect* the candidate pairs, then verifies them in chunks on a
``concurrent.futures`` process pool.

Each worker lazily builds its own q-gram profile cache, so graphs are
profiled at most once per worker regardless of how many candidate pairs
they participate in.  The parent ships the frozen global ordering (the
interning vocabulary, or the object-key ordering on the reference path)
to every worker via the pool initializer, and workers sort each profile
in it — mismatch-instance selection and the improved A* vertex order
therefore match the sequential join exactly.

Workers return one :class:`~repro.runtime.journal.VerificationRecord`
per pair; the parent accrues those records into the join statistics —
including the per-stage :class:`~repro.engine.result.StageStatistics`
rows, derived from each record's prune attribution — in chunk order, so
results *and* per-pair statistics are identical to the sequential join
(asserted by the test suite) while wall-clock phase timings reflect the
parent's view (``verify_time`` is the elapsed pool time and
``ged_time`` the summed worker search time).

Fault tolerance (``docs/ROBUSTNESS.md``): chunks are awaited with an
optional per-chunk timeout; a timeout, a dead worker
(``BrokenProcessPool`` — e.g. an OOM kill), or an exception escaping a
worker tears the pool down, re-dispatches the unfinished chunks on a
fresh pool with capped exponential backoff, and after ``max_retries``
failed attempts verifies the poisoned chunk's pairs *in-process* under
a strict budget, catching per-pair errors — so the join always
terminates with a complete accounting: every candidate pair ends up in
``pairs``, rejected, or in the ``undecided`` channel.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.batch import (
    MIN_BATCH_BLOCK,
    batchable_prefix,
    evaluate_block,
)
from repro.engine.executor import (
    Executor,
    record_of,
    self_join_meta,
)
from repro.engine.inverted_index import InvertedIndex
from repro.engine.options import GSimJoinOptions, Sorter, validate_collection
from repro.engine.result import BoundedPair, JoinResult, JoinStatistics
from repro.engine.stages import VerifyOutcome
from repro.engine.verify import _filters_for, _filters_for_order, verify_pair
from repro.exceptions import ParameterError, ReproError
from repro.ged.compiled import VerificationCache
from repro.ged.portfolio import validate_backend_options
from repro.graph.graph import Graph
from repro.grams.columnar import ColumnarStore
from repro.grams.qgrams import extract_qgrams
from repro.runtime.budget import VerificationBudget
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.journal import JoinJournal, VerificationRecord

__all__ = ["execute_parallel_join", "DEFAULT_FALLBACK_BUDGET"]

#: Budget applied to poisoned pairs verified in-process after
#: ``max_retries`` — strict enough that one adversarial pair cannot
#: wedge the join's final accounting pass.
DEFAULT_FALLBACK_BUDGET = VerificationBudget(
    max_expansions=100_000, max_seconds=10.0
)

#: Cap on the exponential retry backoff (seconds).
_MAX_BACKOFF = 5.0

# Per-worker state, populated by the pool initializer.
_worker: dict = {}


def _init_worker(
    graphs: Sequence[Graph],
    tau: int,
    options: GSimJoinOptions,
    sorter: Sorter,
    budget: Optional[VerificationBudget] = None,
    fault: Optional[FaultPlan] = None,
    store: Optional[ColumnarStore] = None,
) -> None:
    _worker["graphs"] = list(graphs)
    _worker["tau"] = tau
    _worker["options"] = options
    _worker["sorter"] = sorter
    _worker["budget"] = budget
    _worker["injector"] = fault.start() if fault is not None else None
    _worker["profiles"] = {}
    _worker["labels"] = {}
    # Each worker compiles the graphs it touches once, however many
    # candidate pairs they appear in across this worker's chunks.
    _worker["cache"] = VerificationCache()
    # The cascade order this worker verifies with: a tuple plan (the
    # parent ships the planner-calibrated order this way — never the
    # raw "auto" marker, which only the parent's executor interprets)
    # or the default order otherwise.
    plan = options.plan
    plan_order = plan if isinstance(plan, tuple) else None
    _worker["plan_order"] = plan_order
    # Batch mode: the parent ships its columnar store so workers run the
    # vectorized kernels over each chunk's same-probe runs.  The
    # batchable prefix is derived from the same cascade ``verify_pair``
    # will run — keeping the records' prune attribution identical to
    # scalar workers.
    _worker["store"] = store
    _worker["batch_stages"] = (
        batchable_prefix(
            _filters_for_order(plan_order)
            if plan_order is not None
            else _filters_for(options.local_label, options.multicover)
        )
        if store is not None
        else ()
    )


def _profile_of(i: int):
    cached = _worker["profiles"].get(i)
    if cached is None:
        g = _worker["graphs"][i]
        cached = extract_qgrams(g, _worker["options"].q)
        _worker["sorter"].sort_profile(cached)
        # Fork-safety waivers: this memo is per-process verification
        # state — each worker fills and reads only its own copy, and the
        # parent never reads it back, so worker-local divergence is the
        # design, not a race.
        _worker["profiles"][i] = cached  # repro: ignore[fork-safety]
        _worker["labels"][i] = (  # repro: ignore[fork-safety]
            g.vertex_label_multiset(), g.edge_label_multiset()
        )
    return cached, _worker["labels"][i]


def _verify_chunk(chunk: List[Tuple[int, int]]) -> List[VerificationRecord]:
    """Verify a batch of candidate pairs inside a worker process.

    In batch mode the chunk's runs of consecutive pairs sharing one
    probe graph are prefiltered through the vectorized kernels first;
    batch-pruned pairs produce their (identical) prune records without
    ever materializing q-gram profiles, and survivors verify with the
    stages they already passed hinted away.  The fault injector still
    steps once per pair in chunk order, so fault timing matches scalar
    workers exactly.
    """
    options: GSimJoinOptions = _worker["options"]
    tau: int = _worker["tau"]
    budget: Optional[VerificationBudget] = _worker["budget"]
    injector: Optional[FaultInjector] = _worker["injector"]
    store: Optional[ColumnarStore] = _worker["store"]
    batch_stages = _worker["batch_stages"]
    records: List[VerificationRecord] = []
    pos = 0
    while pos < len(chunk):
        end = pos
        while end < len(chunk) and chunk[end][0] == chunk[pos][0]:
            end += 1
        run = chunk[pos:end]
        block = (
            evaluate_block(
                store,
                store.row(run[0][0]),
                [j for _, j in run],
                tau,
                batch_stages,
            )
            if store is not None
            and batch_stages
            and len(run) >= MIN_BATCH_BLOCK
            else None
        )
        for t, (i, j) in enumerate(run):
            tag = block.tags[t] if block is not None else None
            if tag is not None:
                if injector is not None:
                    injector.step()
                records.append(record_of(i, j, VerifyOutcome(False, tag)))
                continue
            p_i, labels_i = _profile_of(i)
            p_j, labels_j = _profile_of(j)
            if injector is not None:
                injector.step()
            outcome = verify_pair(
                p_i,
                p_j,
                tau,
                labels_i,
                labels_j,
                use_local_label=options.local_label,
                improved_order=options.improved_order,
                improved_h=options.improved_h,
                stats=None,
                use_multicover=options.multicover,
                verifier=options.verifier,
                budget=budget,
                cache=_worker["cache"],
                anchor_bound=options.anchor_bound,
                hinted=block.hint_for(t) if block is not None else None,
                plan_order=_worker["plan_order"],
            )
            records.append(record_of(i, j, outcome))
        pos = end
    return records


def _planner_boundary(executor: Executor) -> None:
    """One pair-group boundary of the adaptive planner, parallel-style.

    Applies any pending re-plan; once the calibration decision has been
    taken, freezes the planner — the parallel driver calibrates in the
    parent on the leading candidate pairs and then ships one fixed
    order to the workers, so no decision may fire after hand-off.
    No-op for non-auto runs.
    """
    planner = executor.planner
    if planner is None or planner.frozen:
        return
    executor.apply_pending_replan()
    if planner.calibrated:
        planner.freeze()


def _shutdown_pool(executor: ProcessPoolExecutor) -> None:
    """Tear a (possibly wedged) pool down without waiting on it.

    ``shutdown(wait=False)`` alone would leave a hung worker alive —
    and, being non-daemonic, it would block interpreter exit — so any
    surviving worker processes are killed outright.  Reaches into the
    executor's process table; if that private attribute ever disappears
    the fallback is a plain blocking shutdown.
    """
    executor.shutdown(wait=False, cancel_futures=True)
    processes = getattr(executor, "_processes", None)
    if processes is None:
        executor.shutdown(wait=True)
        return
    for process in list(processes.values()):
        if process.is_alive():
            process.kill()


def _fallback_verify(
    chunk: List[Tuple[int, int]],
    graphs: Sequence[Graph],
    tau: int,
    options: GSimJoinOptions,
    sorter: Sorter,
    budget: Optional[VerificationBudget],
    stats: JoinStatistics,
) -> List[VerificationRecord]:
    """Verify a poisoned chunk in-process, never letting a pair escape.

    Runs under ``budget`` (strict by construction) with no fault
    injector armed; a pair that still raises a library error is
    recorded as undecided with ``pruned_by="error"`` so the join's
    accounting stays complete.
    """
    _init_worker(graphs, tau, options, sorter, budget, None)
    records: List[VerificationRecord] = []
    try:
        for i, j in chunk:
            stats.fallback_pairs += 1
            try:
                records.extend(_verify_chunk([(i, j)]))
            except ReproError:
                stats.failed_pairs += 1
                records.append(
                    VerificationRecord(
                        i=i, j=j, is_result=False, pruned_by="error",
                        undecided=True,
                    )
                )
    finally:
        _worker.clear()
    return records


def execute_parallel_join(
    graphs: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    workers: int = 2,
    chunk_size: int = 8,
    budget: Optional[VerificationBudget] = None,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    fault: Optional[FaultPlan] = None,
    max_retries: int = 2,
    chunk_timeout: Optional[float] = None,
    retry_backoff: float = 0.1,
    fallback_budget: Optional[VerificationBudget] = None,
) -> JoinResult:
    """Self-join with verification parallelized over ``workers`` processes.

    The engine-side implementation behind
    :func:`repro.core.parallel.gsim_join_parallel` — see there for the
    public contract.  Produces exactly the pairs of
    :func:`repro.engine.executor.execute_self_join`; result order
    follows the candidate scan.  ``workers=1`` degrades to an
    in-process loop (useful for debugging without a pool).

    Raises
    ------
    ParameterError
        Same validation as the sequential join, plus ``workers >= 1``,
        ``chunk_size >= 1``, ``max_retries >= 0`` and positive
        ``chunk_timeout``/non-negative ``retry_backoff``.
    """
    if options is None:
        options = GSimJoinOptions()
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    if max_retries < 0:
        raise ParameterError(f"max_retries must be >= 0, got {max_retries}")
    if chunk_timeout is not None and chunk_timeout <= 0:
        raise ParameterError(
            f"chunk_timeout must be > 0, got {chunk_timeout}"
        )
    if retry_backoff < 0:
        raise ParameterError(
            f"retry_backoff must be >= 0, got {retry_backoff}"
        )
    validate_collection(graphs, tau, options)
    validate_backend_options(
        options.verifier, budget=budget, anchor_bound=options.anchor_bound
    )

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=options.q)
    result = JoinResult(stats=stats)
    executor = Executor(tau, options, stats, budget=budget)

    # --- Phase 1: sequential scan, collecting candidate pairs ---------
    started = time.perf_counter()
    profiles, prefixes, labels, sorter = executor.prepare(graphs)
    store = executor.build_store(profiles, labels, prefixes)
    stats.index_time += time.perf_counter() - started

    started = time.perf_counter()
    index = InvertedIndex()
    unprunable: List[int] = []
    pairs: List[Tuple[int, int]] = []
    for i, profile in enumerate(profiles):
        info = prefixes[i]
        candidate_ids = executor.collect_candidates(
            profile, info, index, unprunable, profiles, i
        )
        pairs.extend((i, j) for j in candidate_ids)
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, i)
        else:
            unprunable.append(i)
    stats.candidate_time += time.perf_counter() - started
    stats.index_distinct_keys = index.num_distinct_keys
    stats.index_postings = index.num_postings
    stats.index_bytes = index.size_bytes

    # --- Phase 2: replay the journal, then verify the rest in parallel
    journal = (
        JoinJournal.open(checkpoint, self_join_meta(graphs, tau, options, budget))
        if checkpoint is not None
        else None
    )
    records: Dict[Tuple[int, int], VerificationRecord] = {}
    try:
        todo: List[Tuple[int, int]] = []
        prev_i: Optional[int] = None
        for key in pairs:
            rec = journal.completed.get(key) if journal is not None else None
            if rec is not None:
                # A journal prefix replays through the planner exactly
                # as the original run observed it, boundaries included,
                # so a resumed auto-plan run re-takes the same decisions
                # at the same points (kill-and-resume bit-identity).
                if key[0] != prev_i:
                    _planner_boundary(executor)
                    prev_i = key[0]
                executor.replay(rec)
                records[key] = rec
            else:
                todo.append(key)

        started = time.perf_counter()
        # Auto-plan calibration: verify the leading candidate pairs in
        # the parent until the planner's calibration window fills, then
        # freeze and ship the calibrated order to the workers.  (On a
        # resume the replay loop above may already have filled — or
        # partly filled — the window; ``prev_i`` carries across so a
        # mid-group kill does not introduce an extra boundary.)
        calibrated = 0
        if executor.planner is not None:
            planner = executor.planner
            # The calibration pairs verify in the parent, so the fault
            # plan steps here too — a mid-calibration fault interrupts
            # the join with the journal intact, and the resume replays
            # the partial window bit-identically.
            cal_injector = fault.start() if fault is not None else None
            while calibrated < len(todo) and not planner.frozen:
                i, j = todo[calibrated]
                if i != prev_i:
                    _planner_boundary(executor)
                    if planner.frozen:
                        break
                    prev_i = i
                if cal_injector is not None:
                    cal_injector.step()
                outcome = executor.verify_candidate(
                    profiles[i], profiles[j], labels[i], labels[j]
                )
                rec = record_of(i, j, outcome)
                records[(i, j)] = rec
                if journal is not None:
                    journal.append(rec)
                calibrated += 1
            if not planner.frozen:
                executor.apply_pending_replan()
                planner.freeze()
        todo = todo[calibrated:]

        # Workers receive the frozen calibrated order as an explicit
        # tuple plan — never the "auto" marker (the journal header, by
        # contrast, keeps the original options: the calibrated order is
        # derived state, re-derived deterministically on resume).
        worker_options = options
        if executor.planner is not None:
            worker_options = dataclasses.replace(
                options,
                plan=tuple(s.name for s in executor.plan.pair_filters),
            )

        chunks = [
            todo[k : k + chunk_size] for k in range(0, len(todo), chunk_size)
        ]
        if workers == 1:
            _init_worker(
                list(graphs), tau, worker_options, sorter, budget, fault,
                store,
            )
            try:
                for chunk in chunks:
                    for rec in _verify_chunk(chunk):
                        executor.apply_worker_record(rec)
                        records[(rec.i, rec.j)] = rec
                        if journal is not None:
                            journal.append(rec)
            finally:
                _worker.clear()
        elif chunks:
            chunk_records = _run_chunks(
                chunks,
                graphs=list(graphs),
                tau=tau,
                options=worker_options,
                sorter=sorter,
                budget=budget,
                fault=fault,
                store=store,
                workers=workers,
                max_retries=max_retries,
                chunk_timeout=chunk_timeout,
                retry_backoff=retry_backoff,
                fallback_budget=(
                    fallback_budget
                    if fallback_budget is not None
                    else (budget if budget is not None else DEFAULT_FALLBACK_BUDGET)
                ),
                stats=stats,
            )
            for idx in range(len(chunks)):
                for rec in chunk_records[idx]:
                    executor.apply_worker_record(rec)
                    records[(rec.i, rec.j)] = rec
                    if journal is not None:
                        journal.append(rec)
        stats.verify_time += time.perf_counter() - started
    finally:
        if journal is not None:
            journal.close()

    # --- Assembly: walk the candidate scan order once ------------------
    for i, j in pairs:
        rec = records[(i, j)]
        if rec.is_result:
            result.pairs.append((graphs[j].graph_id, graphs[i].graph_id))
        elif rec.undecided:
            result.undecided.append(
                BoundedPair(
                    graphs[j].graph_id,
                    graphs[i].graph_id,
                    rec.lower,
                    rec.upper,
                    "error" if rec.pruned_by == "error" else "budget",
                )
            )
    stats.results = len(result.pairs)
    return result


def _run_chunks(
    chunks: List[List[Tuple[int, int]]],
    graphs: Sequence[Graph],
    tau: int,
    options: GSimJoinOptions,
    sorter: Sorter,
    budget: Optional[VerificationBudget],
    fault: Optional[FaultPlan],
    store: Optional[ColumnarStore],
    workers: int,
    max_retries: int,
    chunk_timeout: Optional[float],
    retry_backoff: float,
    fallback_budget: Optional[VerificationBudget],
    stats: JoinStatistics,
) -> Dict[int, List[VerificationRecord]]:
    """Run every chunk to completion, surviving worker death and hangs.

    Each round dispatches the still-unfinished chunks on a fresh pool
    and collects results in submission order.  The first chunk whose
    future times out, arrives broken (``BrokenProcessPool``) or raises
    is charged a retry; once a chunk exceeds ``max_retries`` its pairs
    are verified in-process via :func:`_fallback_verify`.  Progress is
    guaranteed: every failing round increments some chunk's retry
    count, so rounds are bounded by ``len(chunks) · (max_retries + 1)``.
    """
    chunk_records: Dict[int, List[VerificationRecord]] = {}
    retries = [0] * len(chunks)
    pending = [idx for idx in range(len(chunks))]
    while pending:
        executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(graphs, tau, options, sorter, budget, fault, store),
        )
        failed: Optional[int] = None
        clean = True
        try:
            futures = {
                idx: executor.submit(_verify_chunk, chunks[idx])
                for idx in pending
            }
            for idx in pending:
                try:
                    chunk_records[idx] = futures[idx].result(
                        timeout=chunk_timeout
                    )
                except Exception:
                    # TimeoutError (hung worker), BrokenProcessPool (dead
                    # worker), or an exception escaping _verify_chunk.
                    failed = idx
                    clean = False
                    break
        finally:
            if clean:
                executor.shutdown(wait=True)
            else:
                _shutdown_pool(executor)
        pending = [idx for idx in pending if idx not in chunk_records]
        if failed is None:
            continue
        stats.chunk_retries += 1
        retries[failed] += 1
        if retries[failed] > max_retries:
            pending = [idx for idx in pending if idx != failed]
            chunk_records[failed] = _fallback_verify(
                chunks[failed],
                graphs,
                tau,
                options,
                sorter,
                fallback_budget,
                stats,
            )
        elif retry_backoff > 0:
            time.sleep(
                min(retry_backoff * 2 ** (retries[failed] - 1), _MAX_BACKOFF)
            )
    return chunk_records
