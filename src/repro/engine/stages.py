"""First-class pipeline stages of the staged execution engine.

The paper's pipeline is one conceptual machine — prefix-indexed
candidate generation, the Verify cascade (Algorithm 6), then A* — and
this module gives each of its steps a first-class stage object.  A
:class:`repro.engine.plan.JoinPlan` is an ordered tuple of these
stages; the :class:`repro.engine.executor.Executor` drives them for all
four entry points (self-join, R×S join, parallel join, index query).

Stage taxonomy (``role``):

* ``prepare``          — :class:`PrepareProfiles`: q-gram extraction,
  global ordering, per-profile sort;
* ``prefix``           — :class:`MinEditFilter` / :class:`BasicPrefix`:
  the prefix-length decision (Lemma 2 / Algorithm 4);
* ``candidates``       — :class:`PrefixCandidates`: inverted-index
  probing (Lemma 2's prefix filtering);
* ``candidate-filter`` — :class:`SizeFilter`: the size lower bound,
  fused into the probe loop exactly as in Algorithm 1;
* ``pair-filter``      — :class:`GlobalLabelFilter`,
  :class:`CountFilter`, :class:`LabelFilter`,
  :class:`MulticoverFilter`: the per-pair Verify cascade, reorderable
  via ``GSimJoinOptions(plan=...)``;
* ``verify``           — :class:`Verify`: the exact GED computation on
  the survivors, with budget-bounded verdicts.

The per-pair cascade runs over a :class:`PairContext` that caches the
mismatching-q-gram computation, so whichever filter needs it first pays
for it and the rest reuse it — reordered plans stay sound and pay no
extra ``CompareQGrams`` calls.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.engine.prefix import PrefixInfo, basic_prefix, minedit_prefix
from repro.engine.result import JoinStatistics
from repro.exceptions import ParameterError
from repro.ged.compiled import VerificationCache
from repro.ged.portfolio import budgeted_backends, validate_backend_options
from repro.ged.vertex_order import input_vertex_order, mismatch_vertex_order
from repro.grams.labels import (
    global_label_lower_bound,
    local_label_lower_bound,
    multicover_min_edit_bound,
)
from repro.grams.mismatch import MismatchResult, compare_qgrams
from repro.grams.qgrams import QGramProfile
from repro.runtime.budget import VerificationBudget

__all__ = [
    "BUDGETED_VERIFIERS",
    "VerifyOutcome",
    "PairContext",
    "PrepareProfiles",
    "BasicPrefix",
    "MinEditFilter",
    "PrefixCandidates",
    "SizeFilter",
    "PairFilter",
    "GlobalLabelFilter",
    "CountFilter",
    "LabelFilter",
    "MulticoverFilter",
    "Verify",
    "run_cascade",
]

#: Deprecated alias: registry keys whose backends honour a
#: :class:`VerificationBudget`.  Since the DFS backend grew bounded
#: verdicts this is *every* registered verifier; kept for callers that
#: still import the historical name (see :mod:`repro.ged.portfolio`
#: for the capability declarations themselves).
BUDGETED_VERIFIERS = budgeted_backends()

LabelPair = Tuple[Counter, Counter]


@dataclass(frozen=True)
class VerifyOutcome:
    """Why a pair was accepted or rejected.

    ``pruned_by`` is one of ``"global_label"``, ``"count"``,
    ``"local_label"``, ``"multicover"``, ``"ged"`` or ``None``
    (accepted); ``ged`` is the (threshold-capped) distance when the
    computation ran and decided exactly.

    Budgeted verification adds three fields: ``undecided`` marks a pair
    whose search exhausted its budget with ``lower ≤ tau < upper`` (the
    join routes it to the ``undecided`` channel), and
    ``lower``/``upper`` carry the bounded verdict whenever the budget
    ran out — including for pairs the bounds *did* decide (accepted
    because ``upper ≤ tau``, or rejected because ``lower > tau``).
    ``expansions``/``ged_seconds`` record the search cost of this
    single pair so the outcome can be journaled and replayed exactly.

    ``backend`` names the portfolio backend that produced a GED verdict
    (``"compiled"``/``"object"``/``"dfs"`` — under ``verifier="auto"``
    the dispatcher's per-pair choice — or ``"memo"`` when the verdict
    came from the :class:`VerificationCache`'s pair-level memo without
    running a search); ``None`` for filter prunes.
    """

    is_result: bool
    pruned_by: Optional[str]
    ged: Optional[int] = None
    undecided: bool = False
    lower: Optional[int] = None
    upper: Optional[int] = None
    expansions: int = 0
    ged_seconds: float = 0.0
    backend: Optional[str] = None


class PairContext:
    """One candidate pair flowing through the per-pair cascade.

    Carries the two sorted profiles, the threshold, the precomputed
    label multisets, and a lazily cached
    :class:`~repro.grams.mismatch.MismatchResult` — whichever stage
    needs the mismatching q-grams first computes them (with the count
    filter's early bailout) and every later stage reuses the result.
    """

    __slots__ = ("p_r", "p_s", "tau", "labels_r", "labels_s", "_mismatch")

    def __init__(
        self,
        p_r: QGramProfile,
        p_s: QGramProfile,
        tau: int,
        labels_r: LabelPair,
        labels_s: LabelPair,
    ) -> None:
        """Bind one candidate pair; the mismatch is computed on demand."""
        self.p_r = p_r
        self.p_s = p_s
        self.tau = tau
        self.labels_r = labels_r
        self.labels_s = labels_s
        self._mismatch: Optional[MismatchResult] = None

    @property
    def mismatch(self) -> MismatchResult:
        """The (cached) bidirectional mismatching-q-gram computation.

        Computed with the count filter's ``tau`` bailout: when
        ``count_pruned`` is set the structure is partial and only the
        count filter may act on it (the other filters pass the pair
        through so the count filter prunes it, whatever the plan
        order — see :class:`CountFilter`).
        """
        m = self._mismatch
        if m is None:
            m = compare_qgrams(self.p_r, self.p_s, self.tau)
            self._mismatch = m
        return m


class PrepareProfiles:
    """Collection preparation: extract q-grams, build and apply the
    global ordering (``role="prepare"``).

    The executor drives the actual loops (they are collection-level,
    not per-pair); this stage object names and describes them in the
    plan and receives their statistics row.
    """

    name = "prepare-profiles"
    role = "prepare"
    detail = "extract path q-grams, build the global ordering, sort profiles"


class BasicPrefix:
    """Basic prefix lengths of Lemma 2: ``τ·D_path + 1`` (``role="prefix"``)."""

    name = "basic-prefix"
    role = "prefix"
    detail = "basic prefix length tau*D_path+1 (Lemma 2)"

    def prefix_info(self, profile: QGramProfile, tau: int) -> PrefixInfo:
        """Prefix decision for one (already sorted) profile."""
        return basic_prefix(profile, tau)


class MinEditFilter:
    """Minimum edit filtering prefixes (Algorithm 4, ``role="prefix"``)."""

    name = "minedit-prefix"
    role = "prefix"
    detail = "minimum-edit-filtered prefix length (Lemma 3 / Algorithm 4)"

    def prefix_info(self, profile: QGramProfile, tau: int) -> PrefixInfo:
        """Prefix decision for one (already sorted) profile."""
        return minedit_prefix(profile, tau)


class PrefixCandidates:
    """Prefix probing against the inverted index (``role="candidates"``).

    The probe loop lives in the executor (it is the join's inner
    candidate-generation loop and owns the index state); the stage's
    statistics row counts every posting/unprunable/fallback encounter
    examined (``input``) and the encounters surviving the by-id dedup
    (``survivors``), and carries the fused probe + size-filter wall
    time.
    """

    name = "prefix-candidates"
    role = "candidates"
    detail = "probe the inverted index with the sorted q-gram prefix"


class SizeFilter:
    """The size lower bound, fused into the probe loop
    (``role="candidate-filter"``).

    ``input`` counts size-filter evaluations, ``survivors`` the
    candidates admitted to verification (Cand-1).  Its wall time is
    included in :class:`PrefixCandidates`' row — the fusion is
    Algorithm 1's own structure.
    """

    name = "size-filter"
    role = "candidate-filter"
    detail = "size lower bound ||V|-|V'|| + ||E|-|E'|| <= tau"


class PairFilter:
    """Base of the per-pair Verify cascade filters (``role="pair-filter"``).

    Subclasses define ``prune(ctx)`` returning the ``pruned_by`` tag
    when the pair is rejected and ``None`` when it survives, the
    :class:`~repro.engine.result.JoinStatistics` counter their prunes
    feed (``counter``), and the tag itself (``tag``) so journal records
    can be mapped back to the stage that produced them on replay.
    """

    name = "pair-filter"
    role = "pair-filter"
    detail = ""
    counter = ""
    tag = ""

    def prune(self, ctx: PairContext) -> Optional[str]:
        """Return the ``pruned_by`` tag, or ``None`` if the pair survives."""
        raise NotImplementedError


class GlobalLabelFilter(PairFilter):
    """Global label filtering (Lemma 5): ``Γ(L_V) + Γ(L_E) > τ`` prunes."""

    name = "global-label-filter"
    detail = "global label lower bound (Lemma 5)"
    counter = "pruned_by_global_label"
    tag = "global_label"

    def prune(self, ctx: PairContext) -> Optional[str]:
        """Prune when the global label lower bound exceeds ``tau``."""
        eps1 = global_label_lower_bound(
            ctx.p_r.graph, ctx.p_s.graph, ctx.labels_r, ctx.labels_s
        )
        if eps1 > ctx.tau:
            return "global_label"
        return None


class CountFilter(PairFilter):
    """Count filtering via mismatching q-gram counts (Lemma 1).

    ``compare_qgrams`` is given ``tau`` so the interned merge bails out
    as soon as a count bound is exceeded; the (cached) result's
    ``count_pruned`` flag is this filter's verdict.
    """

    name = "count-filter"
    detail = "mismatching q-gram count bounds (Lemma 1)"
    counter = "pruned_by_count"
    tag = "count"

    def prune(self, ctx: PairContext) -> Optional[str]:
        """Prune when a mismatching-count bound exceeds ``τ·D_path``."""
        if ctx.mismatch.count_pruned:
            return "count"
        return None


class LabelFilter(PairFilter):
    """Local label filtering (Algorithm 5), both directions (ε₄/ε₅)."""

    name = "local-label-filter"
    detail = "local label lower bounds over mismatching q-grams (Algorithm 5)"
    counter = "pruned_by_local_label"
    tag = "local_label"

    def prune(self, ctx: PairContext) -> Optional[str]:
        """Prune when either direction's local label bound exceeds ``tau``."""
        mismatch = ctx.mismatch
        if mismatch.count_pruned:
            # Partial mismatch data (the merge bailed out): only the
            # count filter may act on it.  Pass the pair through; the
            # count filter prunes it wherever the plan placed it.
            return None
        r, s = ctx.p_r.graph, ctx.p_s.graph
        eps4 = local_label_lower_bound(
            mismatch.mismatch_r, r, s, ctx.tau,
            other_labels=ctx.labels_s, required_mask=mismatch.required_mask_r,
        )
        if eps4 > ctx.tau:
            return "local_label"
        eps5 = local_label_lower_bound(
            mismatch.mismatch_s, s, r, ctx.tau,
            other_labels=ctx.labels_r, required_mask=mismatch.required_mask_s,
        )
        if eps5 > ctx.tau:
            return "local_label"
        return None


class MulticoverFilter(PairFilter):
    """Set-multicover minimum-edit bound over partially matched surplus
    keys — this library's sound extension beyond Algorithm 5.

    Prunes with tag ``"multicover"`` but feeds the local-label counter,
    matching the historical accounting of ``verify_pair``.
    """

    name = "multicover-filter"
    detail = "set-multicover minimum-edit bound over surplus keys (extension)"
    counter = "pruned_by_local_label"
    tag = "multicover"

    def prune(self, ctx: PairContext) -> Optional[str]:
        """Prune when a multicover bound exceeds ``tau``."""
        mismatch = ctx.mismatch
        if mismatch.count_pruned:
            return None
        p_r, p_s, tau = ctx.p_r, ctx.p_s, ctx.tau
        if (
            multicover_min_edit_bound(mismatch.surplus_groups_r(p_r, p_s), tau) > tau
            or multicover_min_edit_bound(mismatch.surplus_groups_s(p_r, p_s), tau) > tau
        ):
            return "multicover"
        return None


class Verify:
    """Exact GED on the filter survivors (``role="verify"``).

    Resolves the configured backend through the portfolio registry
    (:mod:`repro.ged.portfolio`) — the compiled integer-array A*, the
    object-graph A*, the DFS branch-and-bound, or the ``"auto"``
    per-pair hardness dispatcher — and wraps it with the improved
    vertex order (Algorithm 7), the improved heuristic (Algorithm 8),
    budget-bounded verdicts, and the :class:`VerificationCache`'s
    pair-level verdict memo.
    """

    name = "verify"
    role = "verify"
    __slots__ = (
        "verifier", "improved_order", "improved_h", "anchor_bound",
        "_backend",
    )

    def __init__(
        self,
        verifier: str,
        improved_order: bool,
        improved_h: bool,
        anchor_bound: bool = False,
    ) -> None:
        """Configure the GED backend and its optimizations.

        Raises
        ------
        ParameterError
            On an unknown verifier, or ``anchor_bound`` with a backend
            that does not declare anchor-bound support.
        """
        self.verifier = verifier
        self.improved_order = improved_order
        self.improved_h = improved_h
        self.anchor_bound = anchor_bound
        self._backend = validate_backend_options(
            verifier, anchor_bound=anchor_bound
        )

    @property
    def detail(self) -> str:
        """Plan-description line naming the configured backend."""
        caps = self._backend.capabilities
        return (
            f"exact GED via the {self._backend.name!r} backend "
            f"({caps.memory_profile} memory)"
        )

    def run(
        self,
        ctx: PairContext,
        stats: Optional[JoinStatistics] = None,
        budget: Optional[VerificationBudget] = None,
        cache: Optional[VerificationCache] = None,
    ) -> VerifyOutcome:
        """Decide one surviving pair exactly (or bounded, under budget).

        Accrues ``cand2``, ``ged_calls``, ``ged_expansions``,
        ``ged_time``, per-backend call counts and ``undecided`` into
        ``stats`` exactly as the historical ``verify_pair`` did;
        ``ged_time`` starts *after* the vertex-order computation so
        timing semantics are unchanged.

        When ``cache`` carries a decided verdict for this graph-identity
        pair at this threshold (an earlier search of an overlapping
        index query or top-k probe), the memo answers without running
        any search — ``backend="memo"``, zero expansions, no
        ``ged_calls`` tick.

        Raises
        ------
        ParameterError
            On a ``budget`` with a backend whose capabilities exclude
            budgeted verification.
        """
        p_r, p_s, tau = ctx.p_r, ctx.p_s, ctx.tau
        r, s = p_r.graph, p_s.graph
        if stats:
            stats.cand2 += 1
        if cache is not None:
            hit = cache.lookup_verdict(r, s, tau)
            if hit is not None:
                accept, exact, lower, upper = hit
                if stats:
                    stats.memo_hits += 1
                    stats.verify_backends["memo"] = (
                        stats.verify_backends.get("memo", 0) + 1
                    )
                if accept:
                    return VerifyOutcome(
                        True, None, exact, lower=lower, upper=upper,
                        backend="memo",
                    )
                return VerifyOutcome(
                    False, "ged", exact, lower=lower, upper=upper,
                    backend="memo",
                )
        if budget is not None and not self._backend.capabilities.supports_budget:
            validate_backend_options(
                self.verifier, budget=budget, anchor_bound=self.anchor_bound
            )
        order = (
            mismatch_vertex_order(r, ctx.mismatch.mismatch_r)
            if self.improved_order
            else input_vertex_order(r)
        )
        backend = self._backend.select(r, s, tau, ctx.labels_r, ctx.labels_s)
        started = time.perf_counter()
        search = backend.verify(
            r, s, tau, budget,
            order=order, improved_h=self.improved_h, q=p_r.q, cache=cache,
            anchor_bound=self.anchor_bound,
        )
        elapsed = time.perf_counter() - started
        if cache is not None:
            cache.record_verdict(r, s, tau, search)
        if stats:
            stats.ged_time += elapsed
            stats.ged_calls += 1
            stats.ged_expansions += search.expanded
            stats.verify_backends[backend.name] = (
                stats.verify_backends.get(backend.name, 0) + 1
            )
        name = backend.name
        if getattr(search, "budget_exhausted", False):
            lower, upper = search.lower, search.upper
            if upper is not None and upper <= tau:
                # ged <= upper <= tau: decided despite exhaustion.
                return VerifyOutcome(
                    True, None, None, lower=lower, upper=upper,
                    expansions=search.expanded, ged_seconds=elapsed,
                    backend=name,
                )
            if lower is not None and lower > tau:
                # tau < lower <= ged: decided rejection.
                return VerifyOutcome(
                    False, "ged", None, lower=lower, upper=upper,
                    expansions=search.expanded, ged_seconds=elapsed,
                    backend=name,
                )
            if stats:
                stats.undecided += 1
            return VerifyOutcome(
                False, None, None, undecided=True, lower=lower, upper=upper,
                expansions=search.expanded, ged_seconds=elapsed,
                backend=name,
            )
        if search.distance <= tau:
            return VerifyOutcome(
                True, None, search.distance,
                expansions=search.expanded, ged_seconds=elapsed,
                backend=name,
            )
        return VerifyOutcome(
            False, "ged", search.distance,
            expansions=search.expanded, ged_seconds=elapsed,
            backend=name,
        )


def run_cascade(
    filters: Tuple[PairFilter, ...],
    verify: Verify,
    ctx: PairContext,
    stats: Optional[JoinStatistics] = None,
    budget: Optional[VerificationBudget] = None,
    cache: Optional[VerificationCache] = None,
    hinted: Optional[FrozenSet[str]] = None,
) -> VerifyOutcome:
    """Run the per-pair cascade, then GED, on one candidate pair.

    This is the untimed fast path shared by the public ``verify_pair``
    wrapper and the parallel workers; the executor's driver loops use
    its timed twin (:meth:`repro.engine.executor.Executor.verify_candidate`)
    which additionally accrues the per-stage statistics rows.

    ``hinted`` names stages the batch kernels already proved *passed*
    for this pair (see :mod:`repro.engine.batch`); they are skipped
    without re-evaluation.  Sound for any cascade order — each filter's
    verdict for a pair is order-independent.
    """
    for stage in filters:
        if hinted is not None and stage.name in hinted:
            continue
        tag = stage.prune(ctx)
        if tag is not None:
            if stats:
                setattr(stats, stage.counter, getattr(stats, stage.counter) + 1)
            return VerifyOutcome(False, tag)
    return verify.run(ctx, stats=stats, budget=budget, cache=cache)
