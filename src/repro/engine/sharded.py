"""Out-of-core sharded self-join with bounded memory and crash recovery.

:func:`execute_sharded_join` runs Algorithm 1's join over a collection
that need not fit in memory.  The collection is streamed twice
(:func:`repro.graph.io.load_graphs_iter`): once to learn every graph's
size ``|V| + |E|`` and fingerprint the run, once to scatter the graphs
into *size bands* — contiguous ranges of the size-sorted order, written
as shard files under the spill directory.  Banding makes the paper's
size filter a *partition-level* prune: a pair of bands whose size gap
exceeds ``tau`` cannot contain a single qualifying pair
(``||V_r|−|V_s|| + ||E_r|−|E_s|| ≥ |size_r − size_s| > τ``), so the
whole shard pair is skipped before either file is opened.

Each qualifying shard pair is then processed independently, and the
per-pair artifacts make the run both *bounded* and *recoverable*:

* residency is charged against a :class:`~repro.runtime.sharded.
  MemoryBudget` before each load; exceeding it raises
  :class:`~repro.exceptions.MemoryBudgetError`, which the driver treats
  as a degradation signal — the shard pair retries at the next *split
  level*, processing sub-shard combos small enough to fit (the inverted
  index is rebuilt per combo, so its residency is bounded by the combo,
  never the collection);
* verified outcomes stream through a per-pair
  :class:`~repro.runtime.journal.JoinJournal` keyed by **global scan
  positions** ``(hi, lo)`` — stable across split levels, so work
  survives degradation and crashes alike;
* candidates and results spill to disk-backed JSONL queues
  (:class:`~repro.runtime.sharded.SpillQueue`), never accumulating in
  memory;
* the run manifest (:class:`~repro.runtime.sharded.ShardManifest`) is
  updated atomically at every lifecycle transition; a crash —
  ``kill -9``, OOM, ENOSPC — at any point resumes by re-running only
  the shard pairs not yet ``done`` (their journals replay the verified
  prefix), then merging, bit-identically to an uninterrupted run.

Transient I/O failures (``OSError``, including injected ENOSPC) retry
the shard pair with capped exponential backoff up to ``max_retries``
before propagating.  The deterministic merge orders records by global
``(lo, hi)`` position, so result order is stable across shard counts,
split levels and resume boundaries; result *pairs* are invariant under
all of them because every per-pair filter is a sound GED lower bound
(only candidate counts and prune attribution shift with the sharding —
see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engine.executor import Executor, _options_meta, record_of
from repro.engine.inverted_index import InvertedIndex
from repro.engine.options import GSimJoinOptions
from repro.engine.parallel import DEFAULT_FALLBACK_BUDGET, _run_chunks
from repro.engine.result import BoundedPair, JoinResult, JoinStatistics, StageStatistics
from repro.ged.portfolio import validate_backend_options
from repro.exceptions import CheckpointError, MemoryBudgetError, ParameterError
from repro.graph.graph import Graph
from repro.graph.io import dumps_graphs, load_graphs_iter
from repro.runtime.budget import VerificationBudget
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.journal import JoinJournal, VerificationRecord
from repro.runtime.sharded import (
    PAIR_DONE,
    PAIR_RUNNING,
    MemoryBudget,
    ShardManifest,
    SpillQueue,
    plan_bands,
    qualifying_shard_pairs,
)

__all__ = ["execute_sharded_join", "sharded_join_meta", "result_fingerprint"]

#: Logical residency estimate per graph: fixed object overhead plus a
#: per-size-unit cost covering the graph, its q-gram profile and its
#: share of the combo's inverted index.  Deliberately coarse — the
#: budget bounds *working-set shape* (how many graphs are resident at
#: once), it is not an allocator.
_GRAPH_OVERHEAD_BYTES = 4096
_BYTES_PER_SIZE_UNIT = 1536

#: Cap on the exponential shard-pair retry backoff (seconds).
_MAX_BACKOFF = 5.0

#: Candidate pairs per worker chunk when ``workers > 1``.
_CHUNK_SIZE = 8

_MANIFEST_NAME = "manifest.json"


def _estimate_bytes(sizes: Sequence[int]) -> int:
    """Logical residency of loading the graphs with these sizes."""
    return sum(
        _GRAPH_OVERHEAD_BYTES + _BYTES_PER_SIZE_UNIT * size for size in sizes
    )


def sharded_join_meta(
    n: int,
    ids_sha: str,
    tau: int,
    options: GSimJoinOptions,
    budget: Optional[VerificationBudget],
    shards: int,
) -> dict:
    """The manifest meta identifying one sharded self-join run.

    Everything that changes the run's journal keys or result semantics
    is in here, so :meth:`~repro.runtime.sharded.ShardManifest.load`
    refuses to resume across a changed collection, threshold, option
    set or shard count.
    """
    return {
        "kind": "sharded-self-join",
        "n": n,
        "tau": tau,
        "shards": shards,
        "ids_sha": ids_sha,
        "options": _options_meta(options),
        "budget": (
            None
            if budget is None
            else [budget.max_expansions, budget.max_seconds]
        ),
    }


def result_fingerprint(result: JoinResult) -> str:
    """An order-insensitive sha256 over a result's pairs and undecided.

    The cross-driver equivalence check: the sharded join under any
    shard count, split level, memory budget or resume boundary must
    fingerprint identically to the in-memory :func:`~repro.core.join.
    gsim_join` on the same collection (statistics counters are *not*
    included — candidate counts legitimately differ across shardings;
    the result set may not).
    """
    payload = {
        "pairs": sorted(
            ([r, s] for r, s in result.pairs),
            key=lambda p: (str(p[0]), str(p[1])),
        ),
        "undecided": sorted(
            ([u.r_id, u.s_id, u.lower, u.upper, u.reason] for u in result.undecided),
            key=lambda p: (str(p[0]), str(p[1])),
        ),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# --- Partitioning -------------------------------------------------------

Source = Union[str, os.PathLike, Sequence[Graph]]


def _scan_source(source: Source, on_error: str) -> Iterator[Graph]:
    """One streaming pass over the collection (file path or sequence)."""
    if isinstance(source, (str, os.PathLike)):
        return load_graphs_iter(source, on_error=on_error)
    return iter(source)


def _survey(source: Source, on_error: str) -> Tuple[List[int], str]:
    """Pass 1: per-graph sizes plus the run fingerprint, validated.

    Streams the collection once, holding only scalars per graph.
    Raises :class:`~repro.exceptions.ParameterError` on missing or
    duplicate ids and mixed directedness — the same contract as
    :func:`repro.engine.options.validate_collection`, enforced without
    materializing the collection.
    """
    sizes: List[int] = []
    seen_ids = set()
    directedness = set()
    hasher = hashlib.sha256()
    for g in _scan_source(source, on_error):
        if g.graph_id is None:
            raise ParameterError(
                "all graphs need ids; use repro.graph.assign_ids first "
                "(or ids in the collection file)"
            )
        if g.graph_id in seen_ids:
            raise ParameterError(f"duplicate graph id {g.graph_id!r}")
        seen_ids.add(g.graph_id)
        directedness.add(g.is_directed)
        if len(directedness) > 1:
            raise ParameterError(
                "cannot mix directed and undirected graphs in a join"
            )
        sizes.append(g.num_vertices + g.num_edges)
        hasher.update(
            repr(
                (
                    g.graph_id,
                    g.num_vertices,
                    g.num_edges,
                    sorted(g.vertex_label_multiset().items()),
                )
            ).encode("utf-8")
        )
        hasher.update(b"\n")
    return sizes, hasher.hexdigest()[:16]


def _write_shards(
    source: Source,
    on_error: str,
    sizes: Sequence[int],
    shards: int,
    spill_dir: str,
) -> List[dict]:
    """Pass 2: scatter the collection into size-band shard files.

    Bands come from :func:`~repro.runtime.sharded.plan_bands`; each
    band's positions are stored *ascending*, which is also the order
    its graphs appear in the shard file (the pass streams the
    collection in position order), so a sub-shard is simply a
    contiguous slice of the file.  Files are fsynced before this
    function returns — the caller records the partition in the manifest
    only afterwards, so a recorded partition always has its files.
    """
    bands = [sorted(band) for band in plan_bands(sizes, shards)]
    band_of = {}
    for k, band in enumerate(bands):
        for position in band:
            band_of[position] = k
    records: List[dict] = []
    handles = []
    try:
        for k, band in enumerate(bands):
            name = f"shard-{k}.txt"
            handles.append(
                open(os.path.join(spill_dir, name), "w", encoding="utf-8")
            )
            records.append(
                {
                    "index": k,
                    "file": name,
                    "positions": band,
                    "sizes": [sizes[p] for p in band],
                    "min_size": min(sizes[p] for p in band),
                    "max_size": max(sizes[p] for p in band),
                }
            )
        for position, g in enumerate(_scan_source(source, on_error)):
            handles[band_of[position]].write(dumps_graphs([g]))
        for handle in handles:
            handle.flush()
            os.fsync(handle.fileno())
    finally:
        for handle in handles:
            handle.close()
    return records


def _load_slice(path: str, start: int, stop: int) -> List[Graph]:
    """Load shard-file graphs with storage indices in ``[start, stop)``."""
    out: List[Graph] = []
    for idx, g in enumerate(load_graphs_iter(path)):
        if idx >= stop:
            break
        if idx >= start:
            out.append(g)
    return out


def _split_ranges(n: int, parts: int) -> List[Tuple[int, int]]:
    """``parts`` contiguous, non-empty, near-equal ranges covering ``n``."""
    base, extra = divmod(n, parts)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for k in range(parts):
        width = base + (1 if k < extra else 0)
        ranges.append((start, start + width))
        start += width
    return ranges


def _combos(
    n_a: int, n_b: int, is_self: bool, split: int
) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """The sub-shard range combos of one shard pair at ``split`` level.

    Level ``L`` divides each shard into ``min(2**L, len)`` contiguous
    sub-shards.  A self pair pairs every unordered sub-shard combo
    (``u <= v``; the diagonal runs the triangular self-scan), a cross
    pair the full sub-shard product — so every global graph pair of the
    shard pair falls in exactly one combo at every split level.
    """
    parts_a = _split_ranges(n_a, min(2**split, n_a))
    if is_self:
        return [
            (parts_a[u], parts_a[v])
            for u in range(len(parts_a))
            for v in range(u, len(parts_a))
        ]
    parts_b = _split_ranges(n_b, min(2**split, n_b))
    return [(ra, rb) for ra in parts_a for rb in parts_b]


# --- Per-shard-pair processing ------------------------------------------


def _pair_key(a: int, b: int) -> str:
    return f"{a}-{b}"


def _pair_meta(run_meta: dict, key: str) -> dict:
    """The journal header of one shard pair's journal."""
    return {"kind": "sharded-pair", "pair": key, "run": run_meta}


def _step_io(injector: Optional[FaultInjector]) -> None:
    if injector is not None:
        injector.step_io()


def _emit_result(
    res_q: SpillQueue,
    rec: VerificationRecord,
    id_lo: object,
    id_hi: object,
    injector: Optional[FaultInjector],
) -> Tuple[int, int]:
    """Spill one verified outcome's result/undecided contribution.

    Returns the ``(results, undecided)`` delta (0/1 each).  Rejected
    pairs spill nothing — the journal already proves they were decided.
    """
    if rec.is_result:
        _step_io(injector)
        res_q.append(
            {"kind": "pair", "lo": rec.j, "hi": rec.i,
             "id_lo": id_lo, "id_hi": id_hi}
        )
        return 1, 0
    if rec.undecided:
        _step_io(injector)
        res_q.append(
            {
                "kind": "undecided",
                "lo": rec.j,
                "hi": rec.i,
                "id_lo": id_lo,
                "id_hi": id_hi,
                "lower": rec.lower,
                "upper": rec.upper,
                "reason": "error" if rec.pruned_by == "error" else "budget",
            }
        )
        return 0, 1
    return 0, 0


class _ComboContext:
    """Everything one sub-shard combo's verification loop needs."""

    def __init__(
        self,
        tau: int,
        options: GSimJoinOptions,
        budget: Optional[VerificationBudget],
        pair_stats: JoinStatistics,
        journal: JoinJournal,
        cand_q: SpillQueue,
        res_q: SpillQueue,
        injector: Optional[FaultInjector],
        workers: int,
        max_retries: int,
        retry_backoff: float,
        chunk_timeout: Optional[float],
    ) -> None:
        self.tau = tau
        self.options = options
        self.budget = budget
        self.pair_stats = pair_stats
        self.journal = journal
        self.cand_q = cand_q
        self.res_q = res_q
        self.injector = injector
        self.workers = workers
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.chunk_timeout = chunk_timeout
        self.results = 0
        self.undecided = 0

    def handle_candidate(
        self,
        executor: Executor,
        profiles: Sequence,
        labels: Sequence,
        r_local: int,
        s_local: int,
        lo: int,
        hi: int,
        id_lo: object,
        id_hi: object,
        todo: List[Tuple[int, int]],
        todo_keys: Dict[Tuple[int, int], Tuple[int, int, object, object]],
    ) -> None:
        """Spill one discovered candidate, then replay/verify/defer it.

        ``r_local``/``s_local`` index the combo's combined graph list
        (``r`` = the later graph by global position, matching the
        in-memory scan's probe orientation); ``(hi, lo)`` is the global
        journal key.  With ``workers > 1`` fresh pairs are deferred to
        the worker pool via ``todo``.
        """
        _step_io(self.injector)
        self.cand_q.append({"lo": lo, "hi": hi})
        rec = self.journal.completed.get((hi, lo))
        if rec is None and self.workers > 1:
            if self.injector is not None:
                self.injector.step()
            todo.append((r_local, s_local))
            todo_keys[(r_local, s_local)] = (hi, lo, id_lo, id_hi)
            return
        if rec is None:
            if self.injector is not None:
                self.injector.step()
            outcome = executor.verify_candidate(
                profiles[r_local], profiles[s_local],
                labels[r_local], labels[s_local],
            )
            rec = record_of(hi, lo, outcome)
            _step_io(self.injector)
            self.journal.append(rec)
        else:
            executor.replay(rec)
        d_res, d_und = _emit_result(self.res_q, rec, id_lo, id_hi, self.injector)
        self.results += d_res
        self.undecided += d_und

    def drain_workers(
        self,
        executor: Executor,
        graphs: Sequence[Graph],
        sorter,
        todo: List[Tuple[int, int]],
        todo_keys: Dict[Tuple[int, int], Tuple[int, int, object, object]],
    ) -> None:
        """Verify the deferred pairs on the process pool and accrue them.

        Reuses the parallel executor's fault-tolerant chunk runner
        (pool teardown + re-dispatch + in-process fallback), with no
        worker-side fault injection — the parent owns the fault
        schedule, stepping once per pair at dispatch.
        """
        if not todo:
            return
        chunks = [
            todo[k : k + _CHUNK_SIZE] for k in range(0, len(todo), _CHUNK_SIZE)
        ]
        chunk_records = _run_chunks(
            chunks,
            graphs=list(graphs),
            tau=self.tau,
            options=self.options,
            sorter=sorter,
            budget=self.budget,
            fault=None,
            store=None,
            workers=self.workers,
            max_retries=self.max_retries,
            chunk_timeout=self.chunk_timeout,
            retry_backoff=self.retry_backoff,
            fallback_budget=(
                self.budget if self.budget is not None
                else DEFAULT_FALLBACK_BUDGET
            ),
            stats=self.pair_stats,
        )
        for idx in range(len(chunks)):
            for rec in chunk_records[idx]:
                hi, lo, id_lo, id_hi = todo_keys[(rec.i, rec.j)]
                grec = dataclasses.replace(rec, i=hi, j=lo)
                executor.apply_worker_record(grec)
                _step_io(self.injector)
                self.journal.append(grec)
                d_res, d_und = _emit_result(
                    self.res_q, grec, id_lo, id_hi, self.injector
                )
                self.results += d_res
                self.undecided += d_und


def _run_self_combo(ctx: _ComboContext, positions: Sequence[int],
                    graphs: Sequence[Graph]) -> None:
    """Triangular self-scan of one sub-shard (Algorithm 1 shape).

    ``positions`` ascend, so probe ``i`` vs earlier ``j`` always gives
    ``positions[j] < positions[i]`` — the global ``(hi, lo)`` key falls
    straight out of the scan.
    """
    stats = ctx.pair_stats
    executor = Executor(ctx.tau, ctx.options, stats, budget=ctx.budget)
    started = time.perf_counter()
    profiles, prefixes, labels, sorter = executor.prepare(graphs)
    stats.index_time += time.perf_counter() - started

    index = InvertedIndex()
    unprunable: List[int] = []
    todo: List[Tuple[int, int]] = []
    todo_keys: Dict[Tuple[int, int], Tuple[int, int, object, object]] = {}
    for i, profile in enumerate(profiles):
        info = prefixes[i]
        started = time.perf_counter()
        candidate_ids = executor.collect_candidates(
            profile, info, index, unprunable, profiles, i
        )
        stats.candidate_time += time.perf_counter() - started

        started = time.perf_counter()
        for j in candidate_ids:
            ctx.handle_candidate(
                executor, profiles, labels, i, j,
                positions[j], positions[i],
                graphs[j].graph_id, graphs[i].graph_id,
                todo, todo_keys,
            )
        stats.verify_time += time.perf_counter() - started

        started = time.perf_counter()
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, i)
        else:
            unprunable.append(i)
        stats.index_time += time.perf_counter() - started
    started = time.perf_counter()
    ctx.drain_workers(executor, graphs, sorter, todo, todo_keys)
    stats.verify_time += time.perf_counter() - started


def _run_cross_combo(
    ctx: _ComboContext,
    positions_a: Sequence[int],
    graphs_a: Sequence[Graph],
    positions_b: Sequence[int],
    graphs_b: Sequence[Graph],
) -> None:
    """Bipartite scan of two sub-shards: index side B, probe side A.

    Orientation of each discovered pair is by *global* position — the
    later graph verifies as ``r`` regardless of which side it came from
    — so records, results and fault steps match the in-memory scan's
    convention pair-for-pair.
    """
    stats = ctx.pair_stats
    executor = Executor(ctx.tau, ctx.options, stats, budget=ctx.budget)
    combined = list(graphs_a) + list(graphs_b)
    n_a = len(graphs_a)
    started = time.perf_counter()
    profiles, prefixes, labels, sorter = executor.prepare(combined)
    b_profiles = profiles[n_a:]

    index = InvertedIndex()
    unprunable_b: List[int] = []
    for j, profile in enumerate(b_profiles):
        info = prefixes[n_a + j]
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, j)
        else:
            unprunable_b.append(j)
    stats.index_time += time.perf_counter() - started

    todo: List[Tuple[int, int]] = []
    todo_keys: Dict[Tuple[int, int], Tuple[int, int, object, object]] = {}
    for i in range(n_a):
        started = time.perf_counter()
        candidate_ids = executor.collect_candidates(
            profiles[i], prefixes[i], index, unprunable_b, b_profiles,
            len(b_profiles),
        )
        stats.candidate_time += time.perf_counter() - started

        started = time.perf_counter()
        for j in candidate_ids:
            pos_a, pos_b = positions_a[i], positions_b[j]
            if pos_a > pos_b:
                r_local, s_local = i, n_a + j
                lo, hi = pos_b, pos_a
                id_lo, id_hi = graphs_b[j].graph_id, graphs_a[i].graph_id
            else:
                r_local, s_local = n_a + j, i
                lo, hi = pos_a, pos_b
                id_lo, id_hi = graphs_a[i].graph_id, graphs_b[j].graph_id
            ctx.handle_candidate(
                executor, profiles, labels, r_local, s_local,
                lo, hi, id_lo, id_hi, todo, todo_keys,
            )
        stats.verify_time += time.perf_counter() - started
    started = time.perf_counter()
    ctx.drain_workers(executor, combined, sorter, todo, todo_keys)
    stats.verify_time += time.perf_counter() - started


def _process_pair(
    key: str,
    rec_a: dict,
    rec_b: dict,
    split: int,
    spill_dir: str,
    run_meta: dict,
    tau: int,
    options: GSimJoinOptions,
    budget: Optional[VerificationBudget],
    memory: MemoryBudget,
    injector: Optional[FaultInjector],
    workers: int,
    max_retries: int,
    retry_backoff: float,
    chunk_timeout: Optional[float],
    fsync_interval: Optional[int],
) -> Tuple[JoinStatistics, int, int]:
    """One attempt at one shard pair at one split level.

    Opens the pair's journal (replaying any prior attempt's verified
    prefix), recreates its spill queues from scratch (their contents
    are a deterministic function of the journal plus fresh work), runs
    every sub-shard combo under the memory budget, and finishes both
    queues.  Raises :class:`~repro.exceptions.MemoryBudgetError` when a
    combo cannot fit (caller degrades the split) and lets ``OSError``
    escape for the caller's retry/backoff policy.
    """
    is_self = rec_a is rec_b
    pair_stats = JoinStatistics(
        num_graphs=(
            len(rec_a["positions"])
            if is_self
            else len(rec_a["positions"]) + len(rec_b["positions"])
        ),
        tau=tau,
        q=options.q,
    )
    journal = JoinJournal.open(
        os.path.join(spill_dir, f"pair-{key}.journal.jsonl"),
        _pair_meta(run_meta, key),
        fsync_interval=fsync_interval,
    )
    try:
        with SpillQueue.create(
            os.path.join(spill_dir, f"pair-{key}.candidates.jsonl")
        ) as cand_q, SpillQueue.create(
            os.path.join(spill_dir, f"pair-{key}.results.jsonl")
        ) as res_q:
            ctx = _ComboContext(
                tau, options, budget, pair_stats, journal, cand_q, res_q,
                injector, workers, max_retries, retry_backoff, chunk_timeout,
            )
            path_a = os.path.join(spill_dir, rec_a["file"])
            path_b = os.path.join(spill_dir, rec_b["file"])
            for range_a, range_b in _combos(
                len(rec_a["positions"]), len(rec_b["positions"]), is_self, split
            ):
                diagonal = is_self and range_a == range_b
                sizes_a = rec_a["sizes"][range_a[0] : range_a[1]]
                sizes_b = rec_b["sizes"][range_b[0] : range_b[1]]
                estimate = _estimate_bytes(sizes_a)
                if not diagonal:
                    estimate += _estimate_bytes(sizes_b)
                memory.charge(estimate, f"shard pair {key} split {split}")
                try:
                    graphs_a = _load_slice(path_a, range_a[0], range_a[1])
                    positions_a = rec_a["positions"][range_a[0] : range_a[1]]
                    if diagonal:
                        _run_self_combo(ctx, positions_a, graphs_a)
                    else:
                        graphs_b = _load_slice(path_b, range_b[0], range_b[1])
                        positions_b = rec_b["positions"][range_b[0] : range_b[1]]
                        _run_cross_combo(
                            ctx, positions_a, graphs_a, positions_b, graphs_b
                        )
                finally:
                    memory.release(estimate)
            _step_io(injector)
            cand_q.finish()
            _step_io(injector)
            res_q.finish()
            return pair_stats, ctx.results, ctx.undecided
    finally:
        journal.close()


# --- Statistics snapshots -----------------------------------------------

#: JoinStatistics fields snapshotted per shard pair and summed globally.
_COUNTER_FIELDS = (
    "cand1", "cand2",
    "pruned_by_size", "pruned_by_global_label", "pruned_by_count",
    "pruned_by_local_label",
    "total_prefix_length", "unprunable_graphs",
    "index_distinct_keys", "index_postings", "index_bytes",
    "index_time", "candidate_time", "verify_time", "ged_time",
    "ged_calls", "ged_expansions", "compile_time", "compiled_graphs",
    "undecided", "replayed_pairs", "chunk_retries", "fallback_pairs",
    "failed_pairs",
)


def _stats_snapshot(stats: JoinStatistics) -> dict:
    """A shard pair's statistics as a manifest-storable dict."""
    snapshot = {name: getattr(stats, name) for name in _COUNTER_FIELDS}
    snapshot["stages"] = [
        [row.name, row.role, row.input, row.survivors, row.seconds]
        for row in stats.stages
    ]
    return snapshot


def _accrue_snapshot(total: JoinStatistics, snapshot: dict) -> None:
    """Add one shard pair's snapshot into the run's global statistics.

    Stage rows merge by name in first-seen order — pairs accrue in
    sorted key order on clean runs and resumes alike, so the global
    stage table is deterministic.
    """
    for name in _COUNTER_FIELDS:
        setattr(total, name, getattr(total, name) + snapshot[name])
    existing = {row.name: row for row in total.stages}
    for name, role, inputs, survivors, seconds in snapshot["stages"]:
        row = existing.get(name)
        if row is None:
            row = StageStatistics(name=name, role=role)
            total.stages.append(row)
            existing[name] = row
        row.input += inputs
        row.survivors += survivors
        row.seconds += seconds


# --- The driver ---------------------------------------------------------


def execute_sharded_join(
    source: Source,
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    *,
    spill_dir: Union[str, os.PathLike],
    shards: int = 4,
    memory_budget_mb: Optional[float] = None,
    resume: bool = False,
    budget: Optional[VerificationBudget] = None,
    workers: int = 1,
    fault: Optional[FaultPlan] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    chunk_timeout: Optional[float] = None,
    fsync_interval: Optional[int] = None,
    on_error: str = "raise",
) -> JoinResult:
    """Out-of-core self-join over a collection file or sequence.

    The engine-side implementation behind
    :func:`repro.core.sharded.gsim_join_sharded` — see there for the
    public contract and ``docs/ROBUSTNESS.md`` for the recovery
    contract.  ``source`` is preferably a collection *file path*
    (streamed, never fully loaded); a graph sequence is accepted for
    convenience and is scattered through the same shard files, which
    round-trips labels as strings (use string labels for exact parity
    with the in-memory join).

    Raises
    ------
    ParameterError
        On invalid ``tau``/``shards``/``workers``/retry settings,
        missing or duplicate graph ids, or mixed directedness.
    CheckpointError
        When ``spill_dir`` already holds a manifest and ``resume`` is
        false, when the manifest belongs to a different run, or when a
        recorded shard file has gone missing.
    MemoryBudgetError
        When a shard pair exceeds the memory budget even at the finest
        split level (single-graph sub-shards).
    """
    if options is None:
        options = GSimJoinOptions()
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    if options.q < 0:
        raise ParameterError(f"q must be >= 0, got {options.q}")
    if shards < 1:
        raise ParameterError(f"shards must be >= 1, got {shards}")
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if max_retries < 0:
        raise ParameterError(f"max_retries must be >= 0, got {max_retries}")
    if retry_backoff < 0:
        raise ParameterError(f"retry_backoff must be >= 0, got {retry_backoff}")
    validate_backend_options(
        options.verifier, budget=budget, anchor_bound=options.anchor_bound
    )
    spill_dir = os.fspath(spill_dir)
    os.makedirs(spill_dir, exist_ok=True)

    injector = fault.start() if fault is not None else None
    memory = MemoryBudget.from_mb(memory_budget_mb)

    sizes, ids_sha = _survey(source, on_error)
    n = len(sizes)
    run_meta = sharded_join_meta(n, ids_sha, tau, options, budget, shards)

    manifest_path = os.path.join(spill_dir, _MANIFEST_NAME)
    if ShardManifest.exists(manifest_path):
        if not resume:
            raise CheckpointError(
                f"{manifest_path}: a sharded-join manifest already exists; "
                "pass resume=True (CLI: --resume) to continue that run, or "
                "use a fresh spill directory"
            )
        manifest = ShardManifest.load(manifest_path, run_meta)
    else:
        manifest = ShardManifest.create(manifest_path, run_meta)

    if manifest.partition is None:
        records = _write_shards(source, on_error, sizes, shards, spill_dir)
        ranges = [(rec["min_size"], rec["max_size"]) for rec in records]
        keys = [
            _pair_key(a, b) for a, b in qualifying_shard_pairs(ranges, tau)
        ]
        manifest.set_partition(records, keys)
    else:
        records = manifest.partition
        for rec in records:
            if not os.path.exists(os.path.join(spill_dir, rec["file"])):
                raise CheckpointError(
                    f"{spill_dir}: shard file {rec['file']} recorded in the "
                    "manifest is missing; cannot resume"
                )
        keys = sorted(
            manifest.pairs, key=lambda k: tuple(int(x) for x in k.split("-"))
        )

    stats = JoinStatistics(num_graphs=n, tau=tau, q=options.q)
    result = JoinResult(stats=stats)

    for key in keys:
        entry = manifest.pair(key)
        if entry["status"] == PAIR_DONE:
            _accrue_snapshot(stats, entry["stats"])
            continue
        a, b = (int(x) for x in key.split("-"))
        rec_a, rec_b = records[a], (records[a] if a == b else records[b])
        split = int(entry.get("split", 0))
        attempt_errors = 0
        while True:
            manifest.update_pair(
                key,
                status=PAIR_RUNNING,
                attempts=int(entry.get("attempts", 0)) + 1,
                split=split,
            )
            entry = manifest.pair(key)
            try:
                pair_stats, results_n, undecided_n = _process_pair(
                    key, rec_a, rec_b, split, spill_dir, run_meta, tau,
                    options, budget, memory, injector, workers,
                    max_retries, retry_backoff, chunk_timeout, fsync_interval,
                )
            except MemoryBudgetError:
                memory.reset()
                n_a = len(rec_a["positions"])
                n_b = len(rec_b["positions"])
                if min(2**split, n_a) < n_a or min(2**split, n_b) < n_b:
                    split += 1
                    continue
                raise
            except OSError:
                # Transient I/O (ENOSPC, injected faults, flaky disk):
                # capped-backoff retry; the journal keeps what was
                # verified, the queues rebuild from scratch.
                attempt_errors += 1
                if attempt_errors > max_retries:
                    raise
                if retry_backoff > 0:
                    time.sleep(
                        min(
                            retry_backoff * 2 ** (attempt_errors - 1),
                            _MAX_BACKOFF,
                        )
                    )
                continue
            snapshot = _stats_snapshot(pair_stats)
            manifest.update_pair(
                key,
                status=PAIR_DONE,
                split=split,
                stats=snapshot,
                results=results_n,
                undecided=undecided_n,
            )
            _accrue_snapshot(stats, snapshot)
            break

    # Merge: one fault step marks the merge boundary (kill-mid-merge
    # tests aim here), then every done pair's results queue streams in
    # and the union sorts by global position — fully deterministic.
    if injector is not None:
        injector.step()
    merged: List[dict] = []
    for key in keys:
        path = os.path.join(spill_dir, f"pair-{key}.results.jsonl")
        merged.extend(SpillQueue.replay(path))
    merged.sort(key=lambda r: (r["lo"], r["hi"]))
    for record in merged:
        if record["kind"] == "pair":
            result.pairs.append((record["id_lo"], record["id_hi"]))
        else:
            result.undecided.append(
                BoundedPair(
                    record["id_lo"],
                    record["id_hi"],
                    record["lower"],
                    record["upper"],
                    record["reason"],
                )
            )
    stats.results = len(result.pairs)
    manifest.set_complete(
        {
            "results": len(result.pairs),
            "undecided": len(result.undecided),
            "fingerprint": result_fingerprint(result),
            "peak_budget_bytes": memory.peak,
        }
    )
    return result
