"""Count filtering on path-based q-grams (Theorem 1 / Lemma 1).

An edit operation on ``r`` affects at most ``D_path(r) = max_u |Q_u^r|``
q-grams, so two graphs within edit distance ``τ`` must share at least

    ``LB_path = max(|Q_r| − τ·D_path(r), |Q_s| − τ·D_path(s))``

q-grams (as a multiset intersection).  When ``LB_path <= 0`` the filter
is vacuous — the paper's *underflowing* — and the pair must be treated as
a candidate regardless of overlap.
"""

from __future__ import annotations

from repro.grams.qgrams import QGramProfile
from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = [
    "common_qgram_count",
    "count_lower_bound",
    "passes_count_filter",
    "size_lower_bound",
    "passes_size_filter",
]


def common_qgram_count(p: QGramProfile, p2: QGramProfile) -> int:
    """``|Q_r ∩ Q_s|`` — multiset intersection size of the key multisets."""
    a, b = p.key_counts, p2.key_counts
    if len(b) < len(a):
        a, b = b, a
    return sum(min(count, b[key]) for key, count in a.items() if key in b)


def count_lower_bound(p: QGramProfile, p2: QGramProfile, tau: int) -> int:
    """``LB_path`` of Lemma 1 (may be zero or negative: underflow)."""
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    return max(p.count_lower_bound(tau), p2.count_lower_bound(tau))


def passes_count_filter(p: QGramProfile, p2: QGramProfile, tau: int) -> bool:
    """True iff the pair survives count filtering (Lemma 1).

    A vacuous bound (``LB_path <= 0``) always passes: count filtering can
    then prune nothing and the pair must go to the next filter.
    """
    bound = count_lower_bound(p, p2, tau)
    if bound <= 0:
        return True
    return common_qgram_count(p, p2) >= bound


def size_lower_bound(r: Graph, s: Graph) -> int:
    """``||V(r)|−|V(s)|| + ||E(r)|−|E(s)||`` — a trivial GED lower bound.

    Every vertex insertion/deletion changes ``|V|`` by one and every edge
    insertion/deletion changes ``|E|`` by one, while relabelings change
    neither, so GED is at least this sum (Algorithm 1, line 9).
    """
    return abs(r.num_vertices - s.num_vertices) + abs(r.num_edges - s.num_edges)


def passes_size_filter(r: Graph, s: Graph, tau: int) -> bool:
    """True iff the pair survives size filtering."""
    return size_lower_bound(r, s) <= tau
