"""Adaptive cost-based planning of the per-pair filter cascade.

Every ordering of the Verify cascade is sound (each filter is an
independent GED lower bound), so the *order* is a pure performance
decision: the optimal cascade runs filters in ascending
``cost / (1 - pass_rate)`` — the classical predicate-ordering rule,
where ``pass_rate`` is the probability a pair survives the filter and
``cost`` its per-pair evaluation cost.  The expected per-pair cost of
an order ``f1, f2, ..., fk`` is ``c1 + p1·c2 + p1·p2·c3 + ...``.

This module provides the three pieces the ``plan="auto"`` mode is built
from:

* **Collection statistics** (:func:`collect_statistics`) — cheap,
  deterministic aggregates over the q-gram profiles and label multisets
  the engine already extracts: size means, mean signature length,
  label-frequency skew and q-gram document-frequency skew.  Pure
  Python, so the auto planner works with or without numpy.
* **A static cost/selectivity model** — :func:`unit_costs` scales
  per-filter unit costs from the collection statistics (coefficients
  fitted offline against observed per-pair stage seconds on the
  AIDS-like reference workload; ``benchmarks/bench_planner.py`` reports
  the observed per-stage costs so the coefficients can be re-derived),
  and :func:`estimate_pass_rates` measures per-filter selectivity on a
  deterministic systematic sample of size-compatible graph pairs.
  :func:`choose_order` and :func:`expected_cost` turn both into an
  initial cascade order.
* **A mid-join feedback loop** (:class:`AdaptivePlanner`) — the
  executor feeds it one observation per candidate pair (the pair's
  final ``pruned_by`` tag), it maintains per-filter survival counts
  under the *current* order, and at pair-group boundaries the executor
  polls it for re-plan decisions: one calibration decision after the
  first :data:`CALIBRATION_WINDOW` observations, then drift re-checks
  every :data:`RECHECK_INTERVAL` observations that only re-order when
  the predicted cost improves by more than :data:`HYSTERESIS`.

Determinism contract: every planner decision is a pure function of
deterministic inputs — collection statistics, fixed unit-cost
constants, and per-filter *counts* derived from ``pruned_by`` tags.
Wall-clock time never feeds a decision (observed stage seconds are
reported, not consumed), and decisions are applied only at pair-group
boundaries (between probe graphs), where the batch and scalar paths —
and a journal-replayed resume — observe identical cumulative counts.
Kill-and-resume therefore replays the same decisions at the same
points and stays bit-identical (asserted by ``tests/test_planner.py``).

Parameter advice (``q``, prefix mode) is *advisory only*
(:func:`advise_parameters`): changing ``q`` or the prefix stage changes
the candidate set, so it must be chosen before a join starts; the CLI's
``--explain-plan=json`` surfaces the advice instead of silently
applying it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.count_filter import passes_size_filter
from repro.engine.stages import PairContext, PairFilter
from repro.grams.qgrams import QGramProfile

__all__ = [
    "CALIBRATION_WINDOW",
    "RECHECK_INTERVAL",
    "HYSTERESIS",
    "SMOOTHING",
    "SAMPLE_GRAPHS",
    "SAMPLE_PAIR_CAP",
    "CollectionStats",
    "collect_statistics",
    "unit_costs",
    "estimate_pass_rates",
    "expected_cost",
    "choose_order",
    "static_choice",
    "advise_parameters",
    "AdaptivePlanner",
]

#: Observations (candidate pairs) consumed before the calibration
#: decision.  A fixed count approximates "the first few percent" of the
#: candidate stream at benchmark scales while staying meaningful on
#: small joins; callers may override per planner instance.
CALIBRATION_WINDOW = 256

#: Observations between drift re-checks after calibration.
RECHECK_INTERVAL = 512

#: Relative predicted-cost improvement a drift re-plan must exceed —
#: re-ordering on noise would thrash the cascade (and the batchable
#: prefix) for no gain.  The calibration decision itself is exempt.
HYSTERESIS = 0.1

#: Additive-smoothing weight blending the static selectivity estimate
#: into the observed rates — filters starved of observations (placed
#: after a high-pruning filter) keep sane estimates.
SMOOTHING = 8.0

#: Graphs in the systematic estimation sample (evenly spaced over the
#: collection, so both ends of a sorted or phased collection are seen).
SAMPLE_GRAPHS = 24

#: Cap on sampled pairs actually evaluated by the filters.
SAMPLE_PAIR_CAP = 300

#: Pass rate assumed for a filter the sample produced no evidence for.
_DEFAULT_RATE = 0.5

LabelPair = Tuple


@dataclass(frozen=True)
class CollectionStats:
    """Deterministic aggregates of one collection, for the cost model.

    ``mean_signature`` is the mean q-gram multiset size ``|Q_r|`` (the
    count/local-label/multicover filters merge or group signatures, so
    their per-pair cost scales with it); ``mean_labels`` the mean
    number of distinct vertex+edge labels per graph (the global label
    filter's working set); ``label_skew`` the share of the collection's
    total label mass held by its most frequent label; ``df_skew`` the
    document frequency of the most frequent q-gram key as a fraction of
    the collection.
    """

    num_graphs: int
    mean_vertices: float
    mean_edges: float
    mean_signature: float
    mean_labels: float
    label_skew: float
    df_skew: float


def collect_statistics(
    profiles: Sequence[QGramProfile], labels: Sequence[LabelPair]
) -> CollectionStats:
    """Compute :class:`CollectionStats` from prepared profiles/labels.

    Pure Python over state the engine already holds (no numpy, no extra
    passes over the graphs): one pass over the profiles for sizes and
    q-gram document frequencies, one over the label multisets.
    """
    n = len(profiles)
    if n == 0:
        return CollectionStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    total_vertices = 0
    total_edges = 0
    total_signature = 0
    df: Counter = Counter()
    for profile in profiles:
        total_vertices += profile.graph.num_vertices
        total_edges += profile.graph.num_edges
        total_signature += profile.size
        df.update(profile.key_counts.keys())
    total_labels = 0
    label_mass: Counter = Counter()
    for vlab, elab in labels:
        total_labels += len(vlab) + len(elab)
        label_mass.update(vlab)
        label_mass.update(elab)
    mass = sum(label_mass.values())
    return CollectionStats(
        num_graphs=n,
        mean_vertices=total_vertices / n,
        mean_edges=total_edges / n,
        mean_signature=total_signature / n,
        mean_labels=total_labels / n,
        label_skew=(max(label_mass.values()) / mass) if mass else 0.0,
        df_skew=(max(df.values()) / n) if df else 0.0,
    )


def unit_costs(stats: CollectionStats) -> Dict[str, float]:
    """Per-filter unit costs (relative units) for this collection.

    The global label filter touches the distinct-label multisets; the
    count filter merges the sorted signatures; local label filtering
    additionally walks the mismatching instances and their vertices;
    the multicover bound solves a small set-multicover on top.  The
    base/slope coefficients were fitted offline to observed per-pair
    stage seconds (``StageStatistics.seconds / input``) on the
    AIDS-like reference workload; only their *ratios* matter to the
    ordering decision, and ``benchmarks/bench_planner.py`` records the
    observed per-stage costs each run so the fit can be re-checked.
    """
    sig = stats.mean_signature
    lab = stats.mean_labels
    return {
        "global-label-filter": 0.6 + 0.05 * lab,
        "count-filter": 0.8 + 0.05 * sig,
        "local-label-filter": 1.6 + 0.35 * sig,
        "multicover-filter": 2.4 + 0.60 * sig,
    }


def estimate_pass_rates(
    profiles: Sequence[QGramProfile],
    labels: Sequence[LabelPair],
    tau: int,
    filters: Sequence[PairFilter],
    sample_graphs: int = SAMPLE_GRAPHS,
    pair_cap: int = SAMPLE_PAIR_CAP,
) -> Dict[str, float]:
    """Estimate each filter's pass rate on a deterministic sample.

    Takes a systematic sample of ``sample_graphs`` evenly spaced
    profiles, forms their size-compatible pairs (the cascade only ever
    sees pairs that passed the size filter) up to ``pair_cap``, and
    evaluates every filter *independently* on each pair — the same
    shared :class:`~repro.engine.stages.PairContext` caching the
    cascade itself uses, so the estimate reflects the filters' real
    conditional behaviour (e.g. the local label filter passes pairs
    whose mismatch merge bailed out for the count filter, whatever the
    order).  Filters with no sampled evidence default to
    :data:`_DEFAULT_RATE`.
    """
    entered = {stage.name: 0 for stage in filters}
    passed = {stage.name: 0 for stage in filters}
    n = len(profiles)
    if n >= 2:
        stride = max(1, n // sample_graphs)
        sample = list(range(0, n, stride))[:sample_graphs]
        pairs_seen = 0
        for ai in range(len(sample)):
            if pairs_seen >= pair_cap:
                break
            for bi in range(ai + 1, len(sample)):
                if pairs_seen >= pair_cap:
                    break
                a, b = sample[ai], sample[bi]
                p_a, p_b = profiles[a], profiles[b]
                if not passes_size_filter(p_a.graph, p_b.graph, tau):
                    continue
                pairs_seen += 1
                ctx = PairContext(p_a, p_b, tau, labels[a], labels[b])
                for stage in filters:
                    entered[stage.name] += 1
                    if stage.prune(ctx) is None:
                        passed[stage.name] += 1
    rates = {}
    for stage in filters:
        seen = entered[stage.name]
        rates[stage.name] = (
            passed[stage.name] / seen if seen else _DEFAULT_RATE
        )
    return rates


def expected_cost(
    order: Sequence[str],
    rates: Mapping[str, float],
    costs: Mapping[str, float],
) -> float:
    """Expected per-pair cascade cost of ``order``: ``Σ_i c_i·Π_{k<i} p_k``."""
    total = 0.0
    surviving = 1.0
    for name in order:
        total += surviving * costs[name]
        surviving *= min(max(rates[name], 0.0), 1.0)
    return total


def choose_order(
    names: Sequence[str],
    rates: Mapping[str, float],
    costs: Mapping[str, float],
) -> Tuple[str, ...]:
    """The cost-optimal cascade order: ascending ``cost / (1 - pass)``.

    Filters that (apparently) never prune sort after every pruning
    filter, cheapest first; exact ties break on the stage name so the
    choice is deterministic across runs and platforms.
    """
    def rank(name: str) -> Tuple[int, float, str]:
        pass_rate = min(max(rates[name], 0.0), 1.0)
        remainder = 1.0 - pass_rate
        if remainder <= 1e-12:
            return (1, costs[name], name)
        return (0, costs[name] / remainder, name)

    return tuple(sorted(names, key=rank))


def static_choice(
    profiles: Sequence[QGramProfile],
    labels: Sequence[LabelPair],
    tau: int,
    filters: Sequence[PairFilter],
) -> Tuple[Tuple[str, ...], Dict[str, float], Dict[str, float]]:
    """The static planning bundle: ``(order, pass_rates, unit_costs)``.

    Convenience wrapper over :func:`collect_statistics`,
    :func:`estimate_pass_rates`, :func:`unit_costs` and
    :func:`choose_order` for callers that plan once from collection
    state (the executor's ``prepare``, the search index's build).
    """
    stats = collect_statistics(profiles, labels)
    rates = estimate_pass_rates(profiles, labels, tau, filters)
    costs = unit_costs(stats)
    names = tuple(stage.name for stage in filters)
    return choose_order(names, rates, costs), rates, costs


def advise_parameters(
    stats: CollectionStats, q: int, tau: int
) -> Dict[str, object]:
    """Advisory ``q``/prefix-mode recommendation for this collection.

    Follows the paper's evaluation: ``q=4`` on AIDS-sized molecule
    graphs, ``q=3`` on the smaller sparse PROTEIN graphs — small or
    sparse graphs have few long simple paths, so a large ``q`` starves
    the signatures.  Minimum-edit-filtered prefixes pay off whenever
    ``tau > 0``.  *Advisory only*: changing ``q`` or the prefix stage
    changes the candidate set itself, so the runtime optimizer never
    applies it — it must be chosen before the join (the advice is
    surfaced by ``--explain-plan=json``).
    """
    sparse = stats.mean_vertices < 12.0 or (
        stats.mean_vertices > 0.0
        and stats.mean_edges / stats.mean_vertices < 1.0
    )
    return {
        "current_q": q,
        "recommended_q": 3 if sparse else 4,
        "recommended_prefix": (
            "minedit-prefix" if tau > 0 else "basic-prefix"
        ),
        "note": (
            "advisory: q and the prefix mode shape the candidate set "
            "and must be fixed before the join starts"
        ),
    }


class AdaptivePlanner:
    """The mid-join feedback loop behind ``GSimJoinOptions(plan="auto")``.

    The executor calls :meth:`observe` once per candidate pair with the
    pair's final ``pruned_by`` tag and polls :meth:`poll` at pair-group
    boundaries (between probe graphs); ``poll`` returns a re-plan event
    dict — ``{"pair_index", "trigger", "from", "to",
    "estimated_cost_before", "estimated_cost_after"}`` — when the
    cascade should be re-ordered, or ``None``.  Triggers: ``"static"``
    (the initial model-driven choice, pending from construction),
    ``"calibration"`` (after :data:`CALIBRATION_WINDOW` observations,
    no hysteresis) and ``"drift"`` (every :data:`RECHECK_INTERVAL`
    observations, gated by :data:`HYSTERESIS`).

    Observations are attributed under the *current* order: a pair
    pruned by filter ``f`` entered every filter up to ``f`` and passed
    those before it; a surviving pair (or one decided by GED) entered
    and passed all.  Rates blend the observations with the static
    estimate under additive smoothing, so rarely-exercised filters
    never degenerate.  All state is counts — never wall-clock — so
    decisions replay deterministically from a checkpoint journal.

    :meth:`freeze` permanently pins the current order (the parallel
    driver freezes after calibration and ships the order to workers).
    """

    __slots__ = (
        "calibration_window",
        "recheck_interval",
        "hysteresis",
        "smoothing",
        "_names",
        "_by_tag",
        "_order",
        "_static",
        "_costs",
        "_entered",
        "_passed",
        "_observations",
        "_decided_at",
        "_calibrated",
        "_frozen",
        "_static_event",
    )

    def __init__(
        self,
        filters: Sequence[PairFilter],
        static_rates: Mapping[str, float],
        costs: Mapping[str, float],
        calibration_window: int = CALIBRATION_WINDOW,
        recheck_interval: int = RECHECK_INTERVAL,
        hysteresis: float = HYSTERESIS,
        smoothing: float = SMOOTHING,
    ) -> None:
        """Bind the cascade (in its current order) and the static model."""
        self.calibration_window = calibration_window
        self.recheck_interval = recheck_interval
        self.hysteresis = hysteresis
        self.smoothing = smoothing
        self._names: Tuple[str, ...] = tuple(
            stage.name for stage in filters
        )
        self._by_tag: Dict[str, str] = {
            stage.tag: stage.name for stage in filters
        }
        self._order: Tuple[str, ...] = self._names
        self._static: Dict[str, float] = dict(static_rates)
        self._costs: Dict[str, float] = dict(costs)
        self._entered: Dict[str, int] = {name: 0 for name in self._names}
        self._passed: Dict[str, int] = {name: 0 for name in self._names}
        self._observations = 0
        self._decided_at = 0
        self._calibrated = False
        self._frozen = False
        self._static_event: Optional[Dict[str, object]] = None
        best = choose_order(self._names, self._static, self._costs)
        if best != self._order:
            self._static_event = self._event("static", best, self._static)
            self._order = best

    # -- read-only views -------------------------------------------------

    @property
    def order(self) -> Tuple[str, ...]:
        """The currently chosen cascade order."""
        return self._order

    @property
    def observations(self) -> int:
        """Candidate pairs observed so far."""
        return self._observations

    @property
    def calibrated(self) -> bool:
        """Whether the calibration decision has been taken."""
        return self._calibrated

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` pinned the order permanently."""
        return self._frozen

    @property
    def costs(self) -> Dict[str, float]:
        """The per-filter unit costs (relative units)."""
        return dict(self._costs)

    def current_rates(self) -> Dict[str, float]:
        """Smoothed per-filter pass rates (observations + static prior)."""
        rates = {}
        for name in self._names:
            rates[name] = (
                self._passed[name] + self.smoothing * self._static[name]
            ) / (self._entered[name] + self.smoothing)
        return rates

    # -- the feedback loop ----------------------------------------------

    def observe(self, tag: Optional[str]) -> None:
        """Account one candidate pair's final ``pruned_by`` tag.

        ``None`` and non-cascade tags (``"ged"``) mean the pair survived
        every filter.  Frozen planners ignore observations — the order
        can no longer change, so the counts have no consumer.
        """
        if self._frozen:
            return
        self._observations += 1
        pruned = self._by_tag.get(tag, "") if tag is not None else ""
        for name in self._order:
            self._entered[name] += 1
            if name == pruned:
                return
            self._passed[name] += 1

    def poll(self) -> Optional[Dict[str, object]]:
        """The pending re-plan decision at a pair-group boundary.

        Returns the event dict and updates :attr:`order` when the
        cascade should change; ``None`` otherwise.  Callers (the
        executor) must apply the returned order before processing the
        next pair group and record the event in the run statistics.
        """
        if self._frozen:
            return None
        if self._static_event is not None:
            event, self._static_event = self._static_event, None
            return event
        if not self._calibrated:
            if self._observations < self.calibration_window:
                return None
            self._calibrated = True
            return self._decide("calibration", 0.0)
        if self._observations - self._decided_at < self.recheck_interval:
            return None
        return self._decide("drift", self.hysteresis)

    def freeze(self) -> None:
        """Pin the current order permanently (no further decisions)."""
        self._frozen = True

    # -- internals -------------------------------------------------------

    def _decide(
        self, trigger: str, hysteresis: float
    ) -> Optional[Dict[str, object]]:
        """Evaluate a re-plan under ``hysteresis``; update the order."""
        self._decided_at = self._observations
        rates = self.current_rates()
        best = choose_order(self._names, rates, self._costs)
        if best == self._order:
            return None
        current = expected_cost(self._order, rates, self._costs)
        proposed = expected_cost(best, rates, self._costs)
        if current - proposed <= hysteresis * current:
            return None
        event = self._event(trigger, best, rates)
        self._order = best
        return event

    def _event(
        self,
        trigger: str,
        proposed: Tuple[str, ...],
        rates: Mapping[str, float],
    ) -> Dict[str, object]:
        """Build one re-plan event dict (stored in ``JoinStatistics``)."""
        return {
            "pair_index": self._observations,
            "trigger": trigger,
            "from": list(self._order),
            "to": list(proposed),
            "estimated_cost_before": expected_cost(
                self._order, rates, self._costs
            ),
            "estimated_cost_after": expected_cost(
                proposed, rates, self._costs
            ),
        }
