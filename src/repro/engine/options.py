"""GSimJoin run configuration and collection validation.

:class:`GSimJoinOptions` selects the paper's filtering level, the q-gram
length, the interned-signature fast path, and the GED backend; the
staged execution engine additionally reads the optional ``plan`` field
— an explicit ordering of the per-pair filter cascade — when assembling
a :class:`repro.engine.plan.JoinPlan` from the options.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple, Union

from repro.engine.ordering import QGramOrdering, build_ordering
from repro.exceptions import ParameterError
from repro.grams.qgrams import QGramProfile
from repro.grams.vocab import QGramVocabulary, build_vocabulary
from repro.graph.graph import Graph

__all__ = [
    "GSimJoinOptions",
    "Sorter",
    "build_sorter",
    "validate_collection",
]


@dataclass(frozen=True)
class GSimJoinOptions:
    """Configuration of a GSimJoin run.

    Attributes
    ----------
    q:
        Path q-gram length (the paper uses 4 on AIDS, 3 on PROTEIN).
    minedit_prefix:
        Shrink prefixes with minimum edit filtering (Algorithm 4).
    local_label:
        Apply local label filtering during verification (Algorithm 5).
    improved_order:
        Map mismatching-q-gram vertices first in A* (Algorithm 7).
    improved_h:
        Use the local-label-enhanced heuristic in A* (Algorithm 8).
    multicover:
        Additionally apply the set-multicover minimum-edit bound over
        partially matched surplus keys — a sound extension beyond the
        paper (off in the paper-faithful variants).
    interned:
        Run the pipeline on interned integer q-gram signatures — the
        global ordering becomes a pure integer sort, the inverted index
        is keyed by small ints, and ``CompareQGrams`` is a linear merge
        over sorted id arrays (see :mod:`repro.grams.vocab`).  Results
        are bit-identical to the object-key reference path
        (``interned=False``, retained for the parity property tests);
        only speed differs.
    verifier:
        Exact GED backend for the surviving candidates, resolved
        through the portfolio registry of :mod:`repro.ged.portfolio`:
        ``"compiled"`` (the default — the integer-array A* of
        :mod:`repro.ged.compiled`, with per-collection graph
        compilation cached across candidate pairs; bit-identical
        results), ``"object"``/``"astar"`` (the object-graph A*
        reference implementation, two names for one backend),
        ``"dfs"`` (depth-first branch-and-bound with a bipartite
        incumbent — an extension; same answers, O(|V|) memory,
        budget-aware with sound lower/upper brackets on exhaustion) or
        ``"auto"`` (per-pair hardness dispatcher picking ``"dfs"`` for
        hard low-diversity pairs and ``"compiled"`` otherwise — same
        result pairs as every single backend; choices recorded in
        ``JoinStatistics.verify_backends``).
    anchor_bound:
        Enable the compiled backend's optional anchor-aware lower
        bound: identical pairs and distances, potentially fewer A*
        expansions (off by default so expansion counts stay comparable
        with the object backend).  Requires a backend declaring
        anchor-bound support (``verifier="compiled"``).
    plan:
        Optional explicit ordering of the per-pair filter cascade, as a
        tuple of stage names — a strict permutation of the cascade the
        enabled options imply (e.g. ``("count-filter",
        "global-label-filter", "local-label-filter")`` for the full
        variant).  ``None`` (the default) keeps the paper's order.
        Every ordering is sound — each filter is an independent GED
        lower bound — and produces identical result pairs; only the
        per-filter prune attribution and timings shift.  Validated by
        :func:`repro.engine.plan.build_plan`.  The string ``"auto"``
        (CLI ``--auto-plan``) enables the adaptive cost-based planner
        of :mod:`repro.engine.planner` instead: the cascade starts in
        the order the static cost/selectivity model picks and is
        re-ordered mid-join from observed pruning counts — result
        pairs stay bit-identical to every static order (see
        ``docs/PERFORMANCE.md``).  No other string is accepted.
    batch:
        Evaluate the size, global-label and count filters over whole
        candidate blocks with the vectorized numpy kernels of
        :mod:`repro.engine.batch` against the columnar signature store
        (:mod:`repro.grams.columnar`), survivors falling through to the
        scalar cascade with hints.  ``None`` (the default) enables
        batching exactly when numpy is importable and ``interned=True``;
        ``True`` requires both (a clear :class:`~repro.exceptions.
        ParameterError` otherwise); ``False`` forces the scalar path —
        the parity oracle, bit-identical in pairs, distances and
        per-stage statistics (asserted by ``tests/test_batch_parity.py``).
    """

    q: int = 4
    minedit_prefix: bool = True
    local_label: bool = True
    improved_order: bool = True
    improved_h: bool = True
    multicover: bool = False
    interned: bool = True
    verifier: str = "compiled"
    anchor_bound: bool = False
    plan: Optional[Union[str, Tuple[str, ...]]] = None
    batch: Optional[bool] = None

    def __post_init__(self) -> None:
        """Normalize a list/sequence ``plan`` to a tuple (frozen field).

        The only string accepted is ``"auto"`` (the adaptive planner);
        any other string is rejected here rather than exploding into a
        tuple of characters.
        """
        if isinstance(self.plan, str):
            if self.plan != "auto":
                raise ParameterError(
                    f"plan must be 'auto', None, or a tuple of stage "
                    f"names, got {self.plan!r}"
                )
        elif self.plan is not None and not isinstance(self.plan, tuple):
            object.__setattr__(self, "plan", tuple(self.plan))

    @classmethod
    def basic(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """The paper's *Basic GSimJoin* configuration."""
        return cls(q=q, minedit_prefix=False, local_label=False,
                   improved_order=False, improved_h=False, interned=interned)

    @classmethod
    def minedit(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """The paper's *+ MinEdit* configuration."""
        return cls(q=q, minedit_prefix=True, local_label=False,
                   improved_order=True, improved_h=False, interned=interned)

    @classmethod
    def full(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """The paper's *+ Local Label* (complete GSimJoin) configuration."""
        return cls(q=q, minedit_prefix=True, local_label=True,
                   improved_order=True, improved_h=True, interned=interned)

    @classmethod
    def extended(cls, q: int = 4, interned: bool = True) -> "GSimJoinOptions":
        """``full()`` plus this library's multicover filter extension."""
        return cls(q=q, minedit_prefix=True, local_label=True,
                   improved_order=True, improved_h=True, multicover=True,
                   interned=interned)

    def with_q(self, q: int) -> "GSimJoinOptions":
        """This configuration with a different q-gram length."""
        return replace(self, q=q)


#: Either global-ordering implementation — both expose ``sort_profile``.
Sorter = Union[QGramVocabulary, QGramOrdering]


def build_sorter(
    profiles: Sequence[QGramProfile], options: GSimJoinOptions
) -> Sorter:
    """The configured global-ordering implementation over ``profiles``."""
    if options.interned:
        return build_vocabulary(profiles)
    return build_ordering(profiles)


def validate_collection(
    graphs: Sequence[Graph], tau: int, options: GSimJoinOptions
) -> None:
    """Reject invalid join inputs before any work happens.

    Raises
    ------
    ParameterError
        On negative ``tau``/``q``, missing or duplicate graph ids,
        mixed directedness, an unknown verifier, or ``anchor_bound``
        with a backend whose declared capabilities exclude it.
    """
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    if options.q < 0:
        raise ParameterError(f"q must be >= 0, got {options.q}")
    ids = [g.graph_id for g in graphs]
    if any(gid is None for gid in ids):
        raise ParameterError(
            "all graphs need ids; use repro.graph.assign_ids(graphs) first"
        )
    if len(set(ids)) != len(ids):
        raise ParameterError("graph ids must be distinct")
    if len({g.is_directed for g in graphs}) > 1:
        raise ParameterError("cannot mix directed and undirected graphs in a join")
    from repro.ged.portfolio import validate_backend_options

    validate_backend_options(
        options.verifier, anchor_bound=options.anchor_bound
    )
