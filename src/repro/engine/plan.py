"""Join plans: the explicit stage list a join run executes.

``build_plan(options)`` assembles a :class:`JoinPlan` — an ordered
tuple of first-class stage objects from :mod:`repro.engine.stages` —
from a :class:`~repro.engine.options.GSimJoinOptions`.  The structural
stages (prepare, prefix, candidates, size filter, verify) are fixed by
the algorithm's shape; the per-pair filter cascade in the middle is the
reorderable part, and ``GSimJoinOptions(plan=...)`` may supply any
strict permutation of the enabled filter names.  Every ordering is
sound (each filter is an independent GED lower bound over shared,
cached intermediates) and yields identical result pairs; only prune
attribution and stage timings shift.

``JoinPlan.describe()`` renders the plan for the CLI's
``--explain-plan``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.engine.options import GSimJoinOptions
from repro.engine.stages import (
    BasicPrefix,
    CountFilter,
    GlobalLabelFilter,
    LabelFilter,
    MinEditFilter,
    MulticoverFilter,
    PairFilter,
    PrefixCandidates,
    PrepareProfiles,
    SizeFilter,
    Verify,
)
from repro.exceptions import ParameterError

__all__ = [
    "JoinPlan",
    "build_plan",
    "reorder_pair_filters",
    "DEFAULT_FILTER_ORDER",
]

#: The paper's cascade order (Algorithm 6), cheapest bound first.
DEFAULT_FILTER_ORDER: Tuple[str, ...] = (
    "global-label-filter",
    "count-filter",
    "local-label-filter",
    "multicover-filter",
)

_FILTER_FACTORIES = {
    "global-label-filter": GlobalLabelFilter,
    "count-filter": CountFilter,
    "local-label-filter": LabelFilter,
    "multicover-filter": MulticoverFilter,
}


@dataclass(frozen=True)
class JoinPlan:
    """An ordered, validated stage list for one join/search run.

    ``stages`` always reads: one ``prepare`` stage, one ``prefix``
    stage, the ``candidates`` stage, the fused ``candidate-filter``
    (size) stage, zero or more ``pair-filter`` stages, and the
    ``verify`` stage — in execution order.
    """

    stages: Tuple[object, ...]

    @property
    def prepare(self) -> PrepareProfiles:
        """The collection-preparation stage."""
        return next(s for s in self.stages if s.role == "prepare")

    @property
    def prefix(self) -> object:
        """The prefix-length stage (basic or minimum-edit filtered)."""
        return next(s for s in self.stages if s.role == "prefix")

    @property
    def candidates(self) -> PrefixCandidates:
        """The inverted-index probing stage."""
        return next(s for s in self.stages if s.role == "candidates")

    @property
    def size_filter(self) -> SizeFilter:
        """The fused size-filter stage."""
        return next(s for s in self.stages if s.role == "candidate-filter")

    @property
    def pair_filters(self) -> Tuple[PairFilter, ...]:
        """The per-pair cascade filters, in plan order."""
        return tuple(s for s in self.stages if s.role == "pair-filter")

    @property
    def verify(self) -> Verify:
        """The GED verification stage."""
        return next(s for s in self.stages if s.role == "verify")

    def stage_names(self) -> Tuple[str, ...]:
        """All stage names, in execution order."""
        return tuple(s.name for s in self.stages)

    def describe(self) -> str:
        """Human-readable rendering for the CLI's ``--explain-plan``."""
        lines = ["join plan:"]
        for pos, stage in enumerate(self.stages, start=1):
            lines.append(f"  {pos}. {stage.name} [{stage.role}] — {stage.detail}")
        return "\n".join(lines)


def build_plan(options: GSimJoinOptions) -> JoinPlan:
    """Assemble the :class:`JoinPlan` that ``options`` implies.

    The per-pair cascade defaults to the enabled subset of
    :data:`DEFAULT_FILTER_ORDER`; ``options.plan`` may reorder it but
    must name exactly the enabled filters (a strict permutation).
    ``plan="auto"`` builds the same default-order plan — the adaptive
    planner (:mod:`repro.engine.planner`) re-orders it inside the
    executor once collection statistics exist.

    Raises
    ------
    ParameterError
        When ``options.plan`` names an unknown stage, repeats a name,
        omits an enabled filter, or includes a disabled one.
    """
    enabled = ["global-label-filter", "count-filter"]
    if options.local_label:
        enabled.append("local-label-filter")
    if options.multicover:
        enabled.append("multicover-filter")

    order = [name for name in DEFAULT_FILTER_ORDER if name in enabled]
    if options.plan is not None and options.plan != "auto":
        requested = list(options.plan)
        unknown = [n for n in requested if n not in _FILTER_FACTORIES]
        if unknown:
            raise ParameterError(
                f"plan names unknown stages {unknown!r}; "
                f"reorderable stages are {sorted(_FILTER_FACTORIES)!r}"
            )
        duplicates = sorted(
            {n for n in requested if requested.count(n) > 1}
        )
        if duplicates:
            raise ParameterError(
                f"plan repeats stage name(s) {duplicates!r}; each enabled "
                f"pair filter must appear exactly once"
            )
        if sorted(requested) != sorted(order):
            raise ParameterError(
                f"plan must be a permutation of the enabled pair filters "
                f"{order!r}, got {tuple(requested)!r}"
            )
        order = requested

    prefix_stage = MinEditFilter() if options.minedit_prefix else BasicPrefix()
    return _assemble(options, prefix_stage, order)


def _assemble(
    options: GSimJoinOptions, prefix_stage: object, order: "list[str]"
) -> JoinPlan:
    """Instantiate the stage tuple for a validated filter ``order``."""
    stages = (
        PrepareProfiles(),
        prefix_stage,
        PrefixCandidates(),
        SizeFilter(),
        *(_FILTER_FACTORIES[name]() for name in order),
        Verify(
            verifier=options.verifier,
            improved_order=options.improved_order,
            improved_h=options.improved_h,
            anchor_bound=options.anchor_bound,
        ),
    )
    return JoinPlan(stages=stages)


def reorder_pair_filters(
    plan: JoinPlan, order: Tuple[str, ...]
) -> JoinPlan:
    """``plan`` with its pair-filter cascade re-ordered to ``order``.

    Reuses the existing stage *objects* (the structural stages keep
    their identity and any accrued state; only the cascade positions
    change).  Used by the adaptive planner when a re-plan event fires —
    ``order`` must be a permutation of the plan's current filter names.

    Raises
    ------
    ParameterError
        When ``order`` is not a permutation of the plan's pair filters.
    """
    by_name = {stage.name: stage for stage in plan.pair_filters}
    if sorted(order) != sorted(by_name):
        raise ParameterError(
            f"reorder must permute the plan's pair filters "
            f"{tuple(sorted(by_name))!r}, got {tuple(order)!r}"
        )
    reordered = tuple(by_name[name] for name in order)
    stages = (
        plan.prepare,
        plan.prefix,
        plan.candidates,
        plan.size_filter,
        *reordered,
        plan.verify,
    )
    return JoinPlan(stages=stages)
