"""In-memory inverted index over q-gram keys.

Maps each q-gram key to the posting list of graph ids whose *prefix*
contains the key (Algorithm 1 builds it on the fly while scanning the
collection, so at the time graph ``r`` probes, the index holds exactly
the earlier graphs).

Keys are any hashable value.  The interned pipeline indexes dense
integer ids from :class:`repro.grams.vocab.QGramVocabulary` (cheaper to
hash and compare than path-label tuples); the reference pipeline keeps
indexing the object keys themselves — the index is agnostic.

The index also reports its memory footprint the way the paper measures
it: each q-gram is hashed to a 4-byte integer and each posting is a
4-byte graph id, so ``size = 4·(#distinct keys) + 4·(#postings)`` bytes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

__all__ = ["InvertedIndex"]

Key = Hashable

_EMPTY: Tuple = ()


class InvertedIndex:
    """q-gram key -> posting list of graph ids."""

    __slots__ = ("_lists", "_num_postings")

    def __init__(self) -> None:
        self._lists: Dict[Key, List[Hashable]] = {}
        self._num_postings = 0

    def add(self, key: Key, graph_id: Hashable) -> None:
        """Append ``graph_id`` to the posting list of ``key``.

        A graph indexing the same key several times (duplicate q-grams in
        its prefix) produces duplicate postings, exactly as Algorithm 1's
        ``I_w ← I_w ∪ {r}`` per prefix *position*; probes dedupe by id.
        """
        self._lists.setdefault(key, []).append(graph_id)
        self._num_postings += 1

    def probe(self, key: Key) -> Sequence[Hashable]:
        """The posting list of ``key`` (possibly empty).

        Returns the list itself, not a copy — callers iterate, they must
        not mutate.
        """
        return self._lists.get(key, _EMPTY)

    def add_all(self, keys: Iterable[Key], graph_id: Hashable) -> None:
        for key in keys:
            self.add(key, graph_id)

    @property
    def num_distinct_keys(self) -> int:
        return len(self._lists)

    @property
    def num_postings(self) -> int:
        return self._num_postings

    @property
    def size_bytes(self) -> int:
        """Footprint under the paper's cost model (4-byte hash + 4-byte id)."""
        return 4 * self.num_distinct_keys + 4 * self.num_postings

    def __len__(self) -> int:
        return self.num_distinct_keys
