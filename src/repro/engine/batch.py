"""Vectorized batch filter kernels over the columnar signature store.

The scalar engine evaluates the size, global-label (Lemma 5) and count
(Lemma 1) filters one :class:`~repro.engine.stages.PairContext` at a
time; this module evaluates them over whole candidate blocks as numpy
array operations against a :class:`~repro.grams.columnar.ColumnarStore`.
Survivors fall through to the scalar ``LabelFilter``/``MulticoverFilter``
/``Verify`` stages unchanged, carrying a *hint set* of stage names the
kernels already proved passed so the scalar cascade skips them.

Parity contract (asserted by ``tests/test_batch_parity.py`` and
in-bench): for every pair the kernels reproduce the scalar filters'
verdicts bit-for-bit —

* size: ``||V_r|−|V_s|| + ||E_r|−|E_s|| ≤ τ`` is a pure broadcast
  compare over the ``num_vertices``/``num_edges`` columns;
* global label: ``Γ(A, B) = max(|A|, |B|) − |A ∩ B|`` with the multiset
  intersection computed by :func:`block_multiset_intersections` over
  the interned label-id rows — label interning is bijective, so id
  intersections equal label intersections;
* count: the scalar filter prunes iff the *final* mismatch counts
  satisfy ``ε_r > τ·D_path(r)`` or ``ε_s > τ·D_path(s)`` (the merge
  path's early bailout triggers exactly when the final counts would,
  since the counts only grow), and ``ε_r = |Q_r| − |Q_r ∩ Q_s|``, so
  one signature-intersection kernel decides the whole block.  Applies
  only to rows whose signature ids come from the store's vocabulary
  (``mergeable``); other pairs simply leave the batch and rejoin the
  scalar cascade with the hints they earned.

Prune *attribution* matches the scalar cascade because stages run in
plan order and each pair is charged to the first stage that prunes it.
"""

from __future__ import annotations

import time
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.engine.options import GSimJoinOptions
from repro.engine.stages import PairFilter
from repro.exceptions import ParameterError
from repro.grams.columnar import HAVE_NUMPY, ColumnarStore, SignatureRow, np

__all__ = [
    "BATCHABLE_STAGES",
    "MIN_BATCH_BLOCK",
    "BlockVerdicts",
    "resolve_batch",
    "batchable_prefix",
    "block_multiset_intersections",
    "block_size_filter",
    "evaluate_block",
]

#: Pair-filter stage names the batch kernels can evaluate.
BATCHABLE_STAGES = frozenset({"global-label-filter", "count-filter"})

#: Blocks smaller than this are not worth a kernel dispatch: the fixed
#: per-call numpy overhead (~tens of µs) exceeds the scalar cascade's
#: cost on a handful of pairs, so the engine falls back to the scalar
#: stages below it.  Parity is unaffected — both paths compute the
#: same verdicts; only the dispatch choice shifts.
MIN_BATCH_BLOCK = 8


def resolve_batch(options: GSimJoinOptions) -> bool:
    """Decide whether this run batches, validating an explicit request.

    ``batch=None`` (the default) resolves to "yes" exactly when numpy
    is importable and the pipeline runs on interned signatures — the
    object-key reference path (``interned=False``) stays the scalar
    parity oracle.  An explicit ``batch=True`` must be honorable.

    Raises
    ------
    ParameterError
        On ``batch=True`` without numpy installed, or combined with
        ``interned=False``.
    """
    if options.batch is None:
        return HAVE_NUMPY and options.interned
    if not options.batch:
        return False
    if not HAVE_NUMPY:
        raise ParameterError(
            "GSimJoinOptions(batch=True) requires numpy, which is not "
            "installed; install the 'fast' extra (pip install "
            "'repro[fast]') or leave batch unset to use the scalar path"
        )
    if not options.interned:
        raise ParameterError(
            "GSimJoinOptions(batch=True) requires interned=True: the "
            "batch kernels operate on interned integer signatures"
        )
    return True


def batchable_prefix(
    pair_filters: Sequence[PairFilter],
) -> Tuple[PairFilter, ...]:
    """The maximal *leading* run of batch-capable cascade stages.

    Only a prefix is taken — a batched stage after a scalar one would
    evaluate pairs the scalar stage might already have pruned, breaking
    the first-pruning-stage attribution.  Under the default plan this
    is ``(global-label-filter, count-filter)``; a custom plan that
    interleaves (e.g. global, local, count) batches only the leading
    batchable stages.
    """
    prefix: List[PairFilter] = []
    for stage in pair_filters:
        if stage.name not in BATCHABLE_STAGES:
            break
        prefix.append(stage)
    return tuple(prefix)


class BlockVerdicts:
    """Per-pair outcomes of the batch kernels over one candidate block.

    Positions index the block (the ``rows`` sequence given to
    :func:`evaluate_block`).  ``tags[t]`` is the prune tag of a pair
    the kernels rejected (``None`` for survivors); ``depths[t]`` is how
    many leading cascade stages position ``t`` passed in batch —
    :meth:`hint_for` turns it into the stage-name set the scalar
    cascade may skip.  ``pruned_per_stage``/``stage_seconds`` carry the
    per-stage accounting the executor folds into its statistics rows;
    they cover only the stages that actually ran, which may be fewer
    than requested when :func:`evaluate_block` exits early on a
    shrunken block.
    """

    __slots__ = (
        "tags",
        "depths",
        "pruned_per_stage",
        "stage_seconds",
        "hint_sets",
    )

    def __init__(
        self,
        tags: List[Optional[str]],
        depths: List[int],
        pruned_per_stage: List[int],
        stage_seconds: List[float],
        hint_sets: Tuple[FrozenSet[str], ...],
    ) -> None:
        """Bind one block's verdicts (see :func:`evaluate_block`)."""
        self.tags = tags
        self.depths = depths
        self.pruned_per_stage = pruned_per_stage
        self.stage_seconds = stage_seconds
        self.hint_sets = hint_sets

    def hint_for(self, t: int) -> Optional[FrozenSet[str]]:
        """Stage names position ``t`` already passed (``None`` if none)."""
        depth = self.depths[t]
        return self.hint_sets[depth] if depth else None


def block_multiset_intersections(
    r_values: "np.ndarray",
    r_counts: "np.ndarray",
    flat_values: "np.ndarray",
    flat_counts: "np.ndarray",
    offsets: "np.ndarray",
    rows: "np.ndarray",
) -> "np.ndarray":
    """``|M_r ∩ M_j|`` for every row ``j`` in ``rows``, vectorized.

    All multisets are *compressed*: sorted distinct values with a
    parallel count column (``r_values``/``r_counts`` for the probe
    side, ``flat_values``/``flat_counts``/``offsets`` a CSR matrix for
    the store side).  Each gathered distinct value contributes
    ``min(count_row, count_r)`` when present in ``r`` — one
    ``searchsorted`` over the whole block plus a per-segment
    ``bincount`` yields ``Σ_v min(c_row(v), c_r(v))`` exactly, touching
    ``O(distinct)`` elements per row instead of ``O(multiplicity)``.
    """
    block = rows.shape[0]
    starts = offsets[rows]
    lens = offsets[rows + 1] - starts
    total = int(lens.sum())
    if total == 0 or r_values.shape[0] == 0:
        return np.zeros(block, dtype=np.int64)
    seg_ids = np.repeat(np.arange(block, dtype=np.int64), lens)
    # Gather index: global position minus its segment's start, plus the
    # segment's CSR start — one repeat instead of two per-element
    # gathers.
    idx = np.arange(total, dtype=np.int64) + np.repeat(
        starts - (np.cumsum(lens) - lens), lens
    )
    values = flat_values[idx]
    pos = np.searchsorted(r_values, values)
    pos[pos == r_values.shape[0]] = 0  # any in-range slot; masked below
    contrib = np.minimum(flat_counts[idx], r_counts[pos])
    contrib *= r_values[pos] == values
    return np.bincount(
        seg_ids, weights=contrib, minlength=block
    ).astype(np.int64)


def block_size_filter(
    store: ColumnarStore,
    num_vertices: int,
    num_edges: int,
    rows: "np.ndarray",
    tau: int,
) -> "np.ndarray":
    """Size-filter pass mask for one probe graph against ``rows``.

    The vectorized twin of
    :func:`repro.engine.count_filter.passes_size_filter`:
    ``||V_r|−|V_j|| + ||E_r|−|E_j|| ≤ τ``.
    """
    return (
        np.abs(store.num_vertices[rows] - num_vertices)
        + np.abs(store.num_edges[rows] - num_edges)
    ) <= tau


def _global_label_prune(
    store: ColumnarStore, r_row: SignatureRow, rows: "np.ndarray", tau: int
) -> "np.ndarray":
    """Prune mask of the global label filter (Lemma 5) over ``rows``.

    The store keeps vertex and edge label ids combined in disjoint
    even/odd ranges, so one intersection kernel yields
    ``|A_v ∩ B_v| + |A_e ∩ B_e|`` and
    ``Γ_v + Γ_e = max(|A_v|,|B_v|) + max(|A_e|,|B_e|)`` minus it.
    """
    inter = block_multiset_intersections(
        r_row.lab_values,
        r_row.lab_counts,
        store.lab_values,
        store.lab_counts,
        store.lab_offsets,
        rows,
    )
    gamma = (
        np.maximum(store.vlab_len[rows], r_row.vlab_len)
        + np.maximum(store.elab_len[rows], r_row.elab_len)
        - inter
    )
    return gamma > tau


def _count_prune(
    store: ColumnarStore, r_row: SignatureRow, rows: "np.ndarray", tau: int
) -> "np.ndarray":
    """Prune mask of the count filter (Lemma 1) over mergeable ``rows``."""
    inter = block_multiset_intersections(
        r_row.sig_values,
        r_row.sig_counts,
        store.sig_values,
        store.sig_counts,
        store.sig_offsets,
        rows,
    )
    eps_r = r_row.sig_size - inter
    eps_s = store.sig_size[rows] - inter
    return (eps_r > tau * r_row.d_path) | (eps_s > tau * store.d_path[rows])


def evaluate_block(
    store: ColumnarStore,
    r_row: SignatureRow,
    rows: Sequence[int],
    tau: int,
    stages: Sequence[PairFilter],
) -> BlockVerdicts:
    """Run the batchable cascade prefix over one candidate block.

    ``stages`` must be a batchable prefix of the plan's pair filters
    (see :func:`batchable_prefix`); they are evaluated in that order,
    pairs being charged to the first stage that prunes them.  A pair
    the count kernel cannot handle (either side not ``mergeable``)
    leaves the batch at that stage with the hints it earned; it is
    neither pruned nor hinted further, and the scalar cascade resumes
    from exactly that stage.  The same applies to every survivor when
    the block shrinks under :data:`MIN_BATCH_BLOCK` mid-cascade: later
    stages are skipped wholesale (the verdicts then report fewer
    stages than requested) and the scalar cascade finishes the pairs.
    """
    block = len(rows)
    row_array = np.asarray(rows, dtype=np.int64)
    alive = np.ones(block, dtype=bool)
    depth = np.zeros(block, dtype=np.int64)
    tags: List[Optional[str]] = [None] * block
    pruned_per_stage: List[int] = []
    stage_seconds: List[float] = []
    names: List[str] = []
    for stage in stages:
        names.append(stage.name)
        started = time.perf_counter()
        kernel = (
            _count_prune if stage.name == "count-filter"
            else _global_label_prune
        )
        if stage.name == "count-filter":
            if not r_row.mergeable:
                # The probe side has no store-vocabulary signature: the
                # whole remaining block leaves the batch here.
                alive[:] = False
                pruned_per_stage.append(0)
                stage_seconds.append(time.perf_counter() - started)
                continue
            eligible = alive & store.mergeable[row_array]
        else:
            eligible = alive
        # Whole-block kernel when everything is still eligible (the
        # common case); subset only when rows have already dropped out,
        # so the steady state pays no gather/scatter bookkeeping.
        if eligible.all():
            prune = kernel(store, r_row, row_array, tau)
        elif not eligible.any():
            alive = eligible
            pruned_per_stage.append(0)
            stage_seconds.append(time.perf_counter() - started)
            continue
        else:
            idx = np.nonzero(eligible)[0]
            prune = np.zeros(block, dtype=bool)
            prune[idx[kernel(store, r_row, row_array[idx], tau)]] = True
        alive = eligible & ~prune
        n_pruned = int(prune.sum())
        if n_pruned:
            for t in np.nonzero(prune)[0].tolist():
                tags[t] = stage.tag
        depth[alive] += 1
        pruned_per_stage.append(n_pruned)
        stage_seconds.append(time.perf_counter() - started)
        # Once the surviving block is smaller than the dispatch
        # threshold, further kernel calls cost more than the scalar
        # cascade — stop here and let survivors continue scalar with
        # the hints they earned (callers must not assume all stages
        # ran; see BlockVerdicts).
        if (
            len(names) < len(stages)
            and int(alive.sum()) < MIN_BATCH_BLOCK
        ):
            break
    hint_sets = tuple(
        frozenset(names[:d]) for d in range(len(names) + 1)
    )
    return BlockVerdicts(
        tags=tags,
        depths=depth.tolist(),
        pruned_per_stage=pruned_per_stage,
        stage_seconds=stage_seconds,
        hint_sets=hint_sets,
    )
