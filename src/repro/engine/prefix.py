"""Prefix filtering (Section III-C, Lemmas 2–3).

If two q-gram multisets, sorted in one global ordering, must share at
least ``α >= 1`` q-grams, then their ``(|Q|−α+1)``-prefixes must share at
least one (Lemma 2) — so only prefixes need indexing and probing.  The
basic prefix length is ``τ·D_path + 1``; minimum edit filtering
(Lemma 3) shrinks it to the shortest prefix needing ``τ+1`` edits.

A graph whose *entire* multiset can be affected by ``τ`` operations
(``|Q| <= τ·D_path`` for the basic scheme, no valid minimum-edit prefix
for Lemma 3) is *unprunable*: no prefix argument applies to it and the
join must pair it with every graph (the paper's "underflowing"
phenomenon, which it only discusses for κ-AT but which equally affects
small or q-gram-poor graphs here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grams.minedit import min_prefix_length, min_prefix_length_direct
from repro.grams.qgrams import QGramProfile
from repro.exceptions import ParameterError

__all__ = ["PrefixInfo", "basic_prefix", "minedit_prefix"]


@dataclass(frozen=True)
class PrefixInfo:
    """Prefix scheme decision for one graph.

    Attributes
    ----------
    length:
        Number of leading (globally sorted) q-grams to index and probe.
    prunable:
        ``False`` means prefix filtering is unsound for this graph and it
        must be paired with every other graph (size filtering aside).
    """

    length: int
    prunable: bool


def basic_prefix(profile: QGramProfile, tau: int) -> PrefixInfo:
    """Basic prefix of Lemma 2: ``τ·D_path(r) + 1``, clamped to ``|Q_r|``."""
    if tau < 0:
        raise ParameterError(f"tau must be >= 0, got {tau}")
    ideal = tau * profile.d_path + 1
    if profile.size >= ideal:
        return PrefixInfo(length=ideal, prunable=True)
    return PrefixInfo(length=profile.size, prunable=False)


def minedit_prefix(profile: QGramProfile, tau: int) -> PrefixInfo:
    """Minimum edit filtering prefix of Lemma 3 (Algorithm 4).

    ``profile.grams`` must already be sorted in the global ordering
    (see :meth:`repro.grams.vocab.QGramVocabulary.sort_profile` /
    :meth:`repro.engine.ordering.QGramOrdering.sort_profile`).  Interned
    profiles (a signature is attached) take the direct single-sweep
    implementation of Algorithm 4; the object-key reference path keeps
    the paper's double binary search as a frozen oracle — both return
    identical lengths.
    """
    if profile.signature is not None:
        length = min_prefix_length_direct(profile.grams, tau, profile.d_path)
    else:
        length = min_prefix_length(profile.grams, tau, profile.d_path)
    if length is None:
        return PrefixInfo(length=profile.size, prunable=False)
    return PrefixInfo(length=length, prunable=True)
