"""The staged execution engine driving every join/search entry point.

One :class:`Executor` instance carries the cross-cutting run state —
threshold, options, :class:`~repro.engine.plan.JoinPlan`, statistics,
optional :class:`~repro.runtime.budget.VerificationBudget` and the
compiled-verifier :class:`~repro.ged.compiled.VerificationCache` — and
exposes the plan's stages as driver-callable operations: ``prepare``
(collection preparation + prefix decisions), ``collect_candidates``
(index probing with the fused size filter), ``verify_candidate`` (the
timed per-pair cascade + GED), and ``replay``/``apply_worker_record``
(accruing journaled or worker-produced
:class:`~repro.runtime.journal.VerificationRecord` outcomes).

The four public entry points — ``gsim_join``, ``gsim_join_rs``,
``gsim_join_parallel`` and ``GSimIndex.query`` — are thin drivers over
this one machine: :func:`execute_self_join` and :func:`execute_rs_join`
live here, the parallel driver in :mod:`repro.engine.parallel`, and the
index in :mod:`repro.core.search`.  Every stage reports survivor counts
and wall time into the :class:`~repro.engine.result.StageStatistics`
rows of the run's :class:`~repro.engine.result.JoinStatistics` (merged
by stage name, so a long-lived index accumulates across queries).

Phase-timing semantics (``index_time``/``candidate_time``/
``verify_time``/``ged_time``) are owned by the *drivers* and preserved
exactly from the pre-engine implementations; the per-stage rows are the
new, finer-grained layer underneath them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.engine.batch import (
    MIN_BATCH_BLOCK,
    BlockVerdicts,
    batchable_prefix,
    block_size_filter,
    evaluate_block,
    resolve_batch,
)
from repro.engine.count_filter import passes_size_filter
from repro.engine.inverted_index import InvertedIndex
from repro.engine.options import (
    GSimJoinOptions,
    Sorter,
    build_sorter,
    validate_collection,
)
from repro.engine.plan import JoinPlan, build_plan, reorder_pair_filters
from repro.engine.planner import (
    AdaptivePlanner,
    advise_parameters,
    collect_statistics,
    estimate_pass_rates,
    unit_costs,
)
from repro.engine.prefix import PrefixInfo
from repro.engine.result import (
    BoundedPair,
    JoinResult,
    JoinStatistics,
    StageStatistics,
)
from repro.engine.stages import PairContext, VerifyOutcome
from repro.exceptions import ParameterError
from repro.ged.compiled import VerificationCache
from repro.ged.portfolio import validate_backend_options
from repro.graph.graph import Graph
from repro.grams.columnar import (
    ColumnarStore,
    SignatureRow,
    build_columnar_store,
    np,
)
from repro.grams.qgrams import QGramProfile, extract_qgrams
from repro.runtime.budget import VerificationBudget
from repro.runtime.faults import FaultPlan
from repro.runtime.journal import JoinJournal, VerificationRecord

__all__ = [
    "Executor",
    "execute_self_join",
    "execute_rs_join",
    "record_of",
    "self_join_meta",
    "rs_join_meta",
]

#: Which JoinStatistics counter each filter's ``pruned_by`` tag feeds
#: (``multicover`` shares the local-label counter, as historically).
_PRUNE_COUNTERS: Dict[str, str] = {
    "global_label": "pruned_by_global_label",
    "count": "pruned_by_count",
    "local_label": "pruned_by_local_label",
    "multicover": "pruned_by_local_label",
}

LabelPair = Tuple


def record_of(i: int, j: int, outcome: VerifyOutcome) -> VerificationRecord:
    """Freeze one verification outcome into a journal record."""
    return VerificationRecord(
        i=i,
        j=j,
        is_result=outcome.is_result,
        pruned_by=outcome.pruned_by,
        ged=outcome.ged,
        expansions=outcome.expansions,
        ged_seconds=outcome.ged_seconds,
        undecided=outcome.undecided,
        lower=outcome.lower,
        upper=outcome.upper,
        backend=outcome.backend,
    )


def _options_meta(options: GSimJoinOptions) -> dict:
    """``options`` as a journal-header dict, omitting an unset plan.

    Pre-engine journals were written before the ``plan`` field existed,
    so a defaulted plan is dropped from the header — a resumed run with
    ``plan=None`` reproduces the historical meta byte-for-byte.  An
    explicit plan stays in (reordering the cascade shifts journaled
    prune attribution, so such journals must not cross plans).
    ``batch`` is *always* dropped: the batch kernels are bit-identical
    to the scalar cascade, so a journal written under either mode must
    resume under the other (and reproduce the pre-batch header).
    """
    options_dict = dataclasses.asdict(options)
    if options_dict.get("plan") is None:
        options_dict.pop("plan", None)
    options_dict.pop("batch", None)
    return options_dict


def _collection_sha(graphs: Sequence[Graph]) -> str:
    """A 16-hex fingerprint of a collection's ids, sizes and labels."""
    ids_blob = repr(
        [
            (
                g.graph_id,
                g.num_vertices,
                g.num_edges,
                sorted(g.vertex_label_multiset().items()),
            )
            for g in graphs
        ]
    ).encode("utf-8")
    return hashlib.sha256(ids_blob).hexdigest()[:16]


def self_join_meta(
    graphs: Sequence[Graph],
    tau: int,
    options: GSimJoinOptions,
    budget: Optional[VerificationBudget],
) -> dict:
    """The journal header identifying one self-join run.

    A resumed join must re-derive exactly the same meta, so it contains
    only deterministic inputs: a collection fingerprint (id sequence
    plus per-graph sizes and vertex labels — enough to catch a swapped
    collection whose ids happen to coincide), ``tau``, the full
    options, and the budget.
    """
    return {
        "kind": "self-join",
        "n": len(graphs),
        "tau": tau,
        "ids_sha": _collection_sha(graphs),
        "options": _options_meta(options),
        "budget": (
            None
            if budget is None
            else [budget.max_expansions, budget.max_seconds]
        ),
    }


def rs_join_meta(
    outer: Sequence[Graph],
    inner: Sequence[Graph],
    tau: int,
    options: GSimJoinOptions,
    budget: Optional[VerificationBudget],
) -> dict:
    """The journal header identifying one R×S join run.

    Both collections are fingerprinted separately — swapping outer and
    inner changes every journaled ``(i, j)`` key's meaning, so it must
    invalidate the journal.
    """
    return {
        "kind": "rs-join",
        "n_outer": len(outer),
        "n_inner": len(inner),
        "tau": tau,
        "outer_sha": _collection_sha(outer),
        "inner_sha": _collection_sha(inner),
        "options": _options_meta(options),
        "budget": (
            None
            if budget is None
            else [budget.max_expansions, budget.max_seconds]
        ),
    }


class Executor:
    """Drives one :class:`~repro.engine.plan.JoinPlan` for one run.

    Parameters
    ----------
    tau:
        The edit distance threshold of this run (for an index, of the
        current query).
    options:
        The run configuration the plan was (or will be) built from.
    stats:
        The :class:`~repro.engine.result.JoinStatistics` to accrue
        into.  Per-stage :class:`~repro.engine.result.StageStatistics`
        rows are attached to it in plan order, merged by name, so a
        caller reusing one statistics object across executors (the
        search index across queries) accumulates.
    budget:
        Optional per-pair A* budget, threaded into verification.
    cache:
        Compiled-verifier cache to reuse; when ``None`` and the options
        select the compiled verifier, the executor creates one for the
        run (every graph is compiled at most once per run).
    plan:
        A pre-built plan; defaults to ``build_plan(options)``.
    """

    def __init__(
        self,
        tau: int,
        options: GSimJoinOptions,
        stats: JoinStatistics,
        budget: Optional[VerificationBudget] = None,
        cache: Optional[VerificationCache] = None,
        plan: Optional[JoinPlan] = None,
    ) -> None:
        self.tau = tau
        self.options = options
        self.stats = stats
        self.budget = budget
        self.plan = plan if plan is not None else build_plan(options)
        if cache is None:
            cache = VerificationCache()
        self.cache = cache
        existing = {row.name: row for row in stats.stages}
        self._rows: Dict[str, StageStatistics] = {}
        for stage in self.plan.stages:
            row = existing.get(stage.name)
            if row is None:
                row = StageStatistics(name=stage.name, role=stage.role)
                stats.stages.append(row)
            self._rows[stage.name] = row
        self._row_prepare = self._rows[self.plan.prepare.name]
        self._row_prefix = self._rows[self.plan.prefix.name]
        self._row_candidates = self._rows[self.plan.candidates.name]
        self._row_size = self._rows[self.plan.size_filter.name]
        self._row_verify = self._rows[self.plan.verify.name]
        self._cascade = tuple(
            (stage, self._rows[stage.name]) for stage in self.plan.pair_filters
        )
        #: Whether this run uses the vectorized batch kernels
        #: (resolved from ``options.batch``; see repro.engine.batch).
        self.batch: bool = resolve_batch(options)
        self._batch_stages = (
            batchable_prefix(self.plan.pair_filters) if self.batch else ()
        )
        self._store: Optional[ColumnarStore] = None
        self._target_base = 0
        #: Adaptive planner driving ``options.plan == "auto"`` runs.
        #: Created by :meth:`prepare` once collection statistics exist;
        #: a caller-supplied pre-built plan disables it (the caller —
        #: the search index, a parallel worker — already fixed the
        #: order).
        self.planner: Optional[AdaptivePlanner] = None
        self._auto = options.plan == "auto" and plan is None

    # --- Columnar store (batch mode) -----------------------------------

    def attach_store(self, store: ColumnarStore, target_base: int = 0) -> None:
        """Attach the run's columnar store for the batch kernels.

        ``target_base`` offsets candidate positions into store rows —
        an R×S join stores outer followed by inner, so inner position
        ``j`` lives at store row ``target_base + j``.
        """
        self._store = store
        self._target_base = target_base

    def build_store(
        self,
        profiles: Sequence[QGramProfile],
        labels: Sequence[LabelPair],
        prefixes: Optional[Sequence[PrefixInfo]] = None,
        target_base: int = 0,
    ) -> Optional[ColumnarStore]:
        """Build and attach the columnar store when this run batches.

        Returns ``None`` (and attaches nothing) on the scalar path, so
        drivers call it unconditionally after :meth:`prepare`.
        """
        if not self.batch:
            return None
        store = build_columnar_store(
            profiles,
            labels,
            prefix_lengths=(
                [info.length for info in prefixes]
                if prefixes is not None
                else None
            ),
        )
        self.attach_store(store, target_base)
        return store

    def store_row(self, position: int) -> SignatureRow:
        """The probe-side :class:`SignatureRow` for store row ``position``."""
        assert self._store is not None
        return self._store.row(position)

    # --- Collection preparation ---------------------------------------

    def prepare(
        self, graphs: Sequence[Graph]
    ) -> Tuple[List[QGramProfile], List[PrefixInfo], List[LabelPair], Sorter]:
        """Extract q-grams, build/apply the global ordering, compute
        prefixes and label multisets for ``graphs``.

        Accrues ``total_prefix_length``/``unprunable_graphs`` and the
        prepare/prefix stage rows.  The caller owns the ``index_time``
        phase timer, as historically.
        """
        stats, tau = self.stats, self.tau
        started = time.perf_counter()
        profiles = [extract_qgrams(g, self.options.q) for g in graphs]
        sorter = build_sorter(profiles, self.options)
        for profile in profiles:
            sorter.sort_profile(profile)
        prepared = time.perf_counter()

        prefix_stage = self.plan.prefix
        prefixes: List[PrefixInfo] = []
        prunable = 0
        for profile in profiles:
            info = prefix_stage.prefix_info(profile, tau)
            prefixes.append(info)
            stats.total_prefix_length += info.length
            if info.prunable:
                prunable += 1
            else:
                stats.unprunable_graphs += 1
        prefixed = time.perf_counter()

        labels = [
            (g.vertex_label_multiset(), g.edge_label_multiset()) for g in graphs
        ]
        done = time.perf_counter()

        row = self._row_prepare
        row.input += len(profiles)
        row.survivors += len(profiles)
        row.seconds += (prepared - started) + (done - prefixed)
        row = self._row_prefix
        row.input += len(profiles)
        row.survivors += prunable
        row.seconds += prefixed - prepared

        if self._auto and self.planner is None:
            filters = self.plan.pair_filters
            collection = collect_statistics(profiles, labels)
            rates = estimate_pass_rates(profiles, labels, tau, filters)
            self.planner = AdaptivePlanner(
                filters, rates, unit_costs(collection)
            )
            stats.plan_advice = advise_parameters(
                collection, self.options.q, tau
            )
            self.apply_pending_replan()
            self._refresh_estimates()
        return profiles, prefixes, labels, sorter

    # --- Adaptive planning ---------------------------------------------

    def apply_pending_replan(self) -> None:
        """Apply the planner's pending re-plan decision, if any.

        Called at pair-group boundaries (the top of
        :meth:`collect_candidates`, and by the parallel driver between
        probe graphs during replay/calibration) — never mid-group, so
        the batch and scalar paths, and a journal-replayed resume, all
        see the decision at the same point.  The event is recorded in
        ``stats.replan_events``.
        """
        planner = self.planner
        if planner is None:
            return
        event = planner.poll()
        if event is None:
            return
        self._apply_order(tuple(event["to"]))
        self.stats.replan_events.append(event)

    def _apply_order(self, order: Tuple[str, ...]) -> None:
        """Re-order the live cascade (and its batchable prefix)."""
        if order == tuple(s.name for s in self.plan.pair_filters):
            return
        self.plan = reorder_pair_filters(self.plan, order)
        self._cascade = tuple(
            (stage, self._rows[stage.name]) for stage in self.plan.pair_filters
        )
        self._batch_stages = (
            batchable_prefix(self.plan.pair_filters) if self.batch else ()
        )

    def _refresh_estimates(self) -> None:
        """Copy the planner's model into the stage rows.

        Called once at plan time (before any observation,
        ``current_rates()`` *is* the static estimate), so the rows'
        ``estimated_selectivity`` stays the model's prediction and the
        ``observed_selectivity`` property measures it against reality.
        """
        planner = self.planner
        if planner is None:
            return
        rates = planner.current_rates()
        costs = planner.costs
        for stage, row in self._cascade:
            row.estimated_selectivity = rates[stage.name]
            row.estimated_cost = costs[stage.name]

    # --- Candidate generation -----------------------------------------

    def collect_candidates(
        self,
        profile: QGramProfile,
        info: PrefixInfo,
        index: InvertedIndex,
        unprunable: Sequence[int],
        targets: Sequence[QGramProfile],
        fallback_count: int,
    ) -> Dict[int, bool]:
        """Probe ``index`` with ``profile``'s prefix, size-filter fused.

        ``targets`` maps posting positions to profiles; an unprunable
        probe graph falls back to testing positions
        ``range(fallback_count)`` (the scan prefix for the self-join,
        the whole inner/indexed collection otherwise).  Accrues
        ``cand1`` and the candidates/size-filter stage rows; the caller
        owns the ``candidate_time`` phase timer.

        A probe call is a pair-group boundary: any pending adaptive
        re-plan is applied here, before this probe's candidates see the
        cascade.
        """
        self.apply_pending_replan()
        stats, tau = self.stats, self.tau
        r = profile.graph
        started = time.perf_counter()
        if self._store is not None:
            encounters, tests, candidate_ids = self._collect_batch(
                profile, info, index, targets, unprunable, fallback_count
            )
        else:
            encounters = 0
            tests = 0
            candidate_ids = {}
            if info.prunable:
                for key in profile.prefix_keys(info.length):
                    for j in index.probe(key):
                        encounters += 1
                        if j not in candidate_ids:
                            tests += 1
                            if passes_size_filter(r, targets[j].graph, tau):
                                candidate_ids[j] = True
                for j in unprunable:
                    encounters += 1
                    if j not in candidate_ids:
                        tests += 1
                        if passes_size_filter(r, targets[j].graph, tau):
                            candidate_ids[j] = True
            else:
                for j in range(fallback_count):
                    encounters += 1
                    tests += 1
                    if passes_size_filter(r, targets[j].graph, tau):
                        candidate_ids[j] = True
        stats.cand1 += len(candidate_ids)
        elapsed = time.perf_counter() - started

        row = self._row_candidates
        row.input += encounters
        row.survivors += tests
        row.seconds += elapsed
        row = self._row_size
        row.input += tests
        row.survivors += len(candidate_ids)
        return candidate_ids

    def _collect_batch(
        self,
        profile: QGramProfile,
        info: PrefixInfo,
        index: InvertedIndex,
        targets: Sequence[QGramProfile],
        unprunable: Sequence[int],
        fallback_count: int,
    ) -> Tuple[int, int, Dict[int, bool]]:
        """Batch-mode candidate collection: one vectorized size filter.

        Reproduces the scalar probe loop's accounting exactly: every
        encounter counts once; a distinct id is size-*tested* once when
        it passes but on every encounter while it keeps failing (the
        scalar loop never memoizes failures); ``candidate_ids`` keeps
        first-encounter order.  Blocks below
        :data:`~repro.engine.batch.MIN_BATCH_BLOCK` are size-tested
        scalar — same verdicts, no kernel dispatch overhead.
        """
        store, tau = self._store, self.tau
        assert store is not None
        r = profile.graph
        candidate_ids: Dict[int, bool] = {}
        if info.prunable:
            encountered: List[int] = []
            for key in profile.prefix_keys(info.length):
                encountered.extend(index.probe(key))
            encountered.extend(unprunable)
            encounters = len(encountered)
            distinct = list(dict.fromkeys(encountered))
            if not distinct:
                return encounters, 0, candidate_ids
            if len(distinct) < MIN_BATCH_BLOCK:
                passed_list = [
                    passes_size_filter(r, targets[j].graph, tau)
                    for j in distinct
                ]
            else:
                rows = (
                    np.asarray(distinct, dtype=np.int64) + self._target_base
                )
                passed_list = block_size_filter(
                    store, r.num_vertices, r.num_edges, rows, tau
                ).tolist()
            tests = sum(passed_list)
            if tests != len(distinct):
                failing = {
                    j for j, ok in zip(distinct, passed_list) if not ok
                }
                tests += sum(1 for j in encountered if j in failing)
            for j, ok in zip(distinct, passed_list):
                if ok:
                    candidate_ids[j] = True
            return encounters, tests, candidate_ids
        if fallback_count >= MIN_BATCH_BLOCK:
            rows = (
                np.arange(fallback_count, dtype=np.int64) + self._target_base
            )
            passed = block_size_filter(
                store, r.num_vertices, r.num_edges, rows, tau
            )
            for j, ok in enumerate(passed.tolist()):
                if ok:
                    candidate_ids[j] = True
        else:
            for j in range(fallback_count):
                if passes_size_filter(r, targets[j].graph, tau):
                    candidate_ids[j] = True
        return fallback_count, fallback_count, candidate_ids

    def batch_prefilter(
        self, r_row: SignatureRow, js: Sequence[int]
    ) -> Optional[BlockVerdicts]:
        """Run the batchable cascade prefix over one candidate block.

        Returns ``None`` when nothing can batch (scalar mode, no store,
        empty cascade prefix, or a block smaller than
        :data:`~repro.engine.batch.MIN_BATCH_BLOCK` — the caller's
        scalar cascade computes the same verdicts without the kernel
        dispatch overhead).  Statistics for the *batch-pruned* pairs
        are accrued here, exactly as the scalar cascade would have: a
        pair pruned at stage ``k`` entered stages ``0..k`` and survived
        ``0..k-1``.  Survivors' stage rows are accrued by
        :meth:`verify_candidate` via the hint set.
        """
        if (
            self._store is None
            or not self._batch_stages
            or len(js) < MIN_BATCH_BLOCK
        ):
            return None
        rows = np.asarray(js, dtype=np.int64)
        if self._target_base:
            rows = rows + self._target_base
        verdicts = evaluate_block(
            self._store, r_row, rows, self.tau, self._batch_stages
        )
        stats = self.stats
        remaining = sum(verdicts.pruned_per_stage)
        # zip, not enumerate: evaluate_block may exit early once the
        # surviving block drops under the dispatch threshold, reporting
        # fewer stages than the full batchable prefix.
        for stage, pruned_here, seconds in zip(
            self._batch_stages,
            verdicts.pruned_per_stage,
            verdicts.stage_seconds,
        ):
            row = self._rows[stage.name]
            row.seconds += seconds
            row.input += remaining
            row.survivors += remaining - pruned_here
            if pruned_here:
                setattr(
                    stats,
                    stage.counter,
                    getattr(stats, stage.counter) + pruned_here,
                )
            remaining -= pruned_here
        planner = self.planner
        if planner is not None:
            # Batch-pruned pairs never reach verify_candidate; feed
            # their tags to the planner here.  Survivors are observed
            # when the scalar cascade finishes them.  Within-group
            # observation order differs from the scalar path, but the
            # planner only acts on cumulative counts at group
            # boundaries, where both paths agree.
            for tag in verdicts.tags:
                if tag is not None:
                    planner.observe(tag)
        return verdicts

    # --- Verification --------------------------------------------------

    def verify_candidate(
        self,
        p_r: QGramProfile,
        p_s: QGramProfile,
        labels_r: LabelPair,
        labels_s: LabelPair,
        hinted: Optional[FrozenSet[str]] = None,
    ) -> VerifyOutcome:
        """Run the plan's pair-filter cascade, then GED, on one pair.

        Statistics semantics are those of the historical
        ``verify_pair`` (prune counters, Cand-2, GED timings), plus the
        per-stage rows.  The caller owns the ``verify_time`` phase
        timer.  ``hinted`` names stages the batch kernels already
        proved passed for this pair; they are skipped (accruing their
        input/survivor counts — the batch kernel already charged its
        wall time to the stage row).
        """
        stats = self.stats
        ctx = PairContext(p_r, p_s, self.tau, labels_r, labels_s)
        for stage, row in self._cascade:
            row.input += 1
            if hinted is not None and stage.name in hinted:
                row.survivors += 1
                continue
            started = time.perf_counter()
            tag = stage.prune(ctx)
            row.seconds += time.perf_counter() - started
            if tag is not None:
                setattr(stats, stage.counter, getattr(stats, stage.counter) + 1)
                if self.planner is not None:
                    self.planner.observe(tag)
                return VerifyOutcome(False, tag)
            row.survivors += 1
        row = self._row_verify
        row.input += 1
        started = time.perf_counter()
        outcome = self.plan.verify.run(
            ctx, stats=stats, budget=self.budget, cache=self.cache
        )
        row.seconds += time.perf_counter() - started
        if outcome.is_result:
            row.survivors += 1
        if self.planner is not None:
            self.planner.observe(outcome.pruned_by)
        return outcome

    # --- Record replay -------------------------------------------------

    def _accrue_record_rows(self, rec: VerificationRecord) -> None:
        """Derive stage-row counts from a completed record.

        Filters contribute counts but no wall time (nothing re-runs on
        replay); the verify row gets the journaled ``ged_seconds``.
        Fallback ``"error"`` records never passed any stage and are
        skipped.
        """
        if rec.pruned_by == "error":
            return
        for stage, row in self._cascade:
            row.input += 1
            if rec.pruned_by is not None and rec.pruned_by == stage.tag:
                return
            row.survivors += 1
        if rec.ran_ged:
            row = self._row_verify
            row.input += 1
            row.seconds += rec.ged_seconds
            if rec.is_result:
                row.survivors += 1

    def replay(self, rec: VerificationRecord) -> None:
        """Apply a journaled outcome's statistics exactly as a fresh
        verification would, plus one ``replayed_pairs`` tick."""
        stats = self.stats
        counter = _PRUNE_COUNTERS.get(rec.pruned_by or "")
        if counter is not None:
            setattr(stats, counter, getattr(stats, counter) + 1)
        if rec.ran_ged:
            stats.cand2 += 1
            stats.ged_calls += 1
            stats.ged_expansions += rec.expansions
            stats.ged_time += rec.ged_seconds
            if rec.backend:
                stats.verify_backends[rec.backend] = (
                    stats.verify_backends.get(rec.backend, 0) + 1
                )
        if rec.undecided:
            stats.undecided += 1
        stats.replayed_pairs += 1
        self._accrue_record_rows(rec)
        if self.planner is not None and rec.pruned_by != "error":
            # Journaled outcomes feed the planner exactly as the live
            # cascade would have, so a resumed run reconstructs the
            # same counts — and therefore the same re-plan decisions at
            # the same group boundaries — as the uninterrupted run.
            self.planner.observe(rec.pruned_by)

    def apply_worker_record(self, rec: VerificationRecord) -> None:
        """Accrue one parallel-worker record (fresh work, not a replay)."""
        self.replay(rec)
        self.stats.replayed_pairs -= 1

    # --- Run finalization ----------------------------------------------

    def finish(self, result: JoinResult, index: Optional[InvertedIndex]) -> None:
        """Fill the end-of-run statistics (results, index and cache sizes)."""
        stats = self.stats
        stats.results = len(result.pairs)
        if index is not None:
            stats.index_distinct_keys = index.num_distinct_keys
            stats.index_postings = index.num_postings
            stats.index_bytes = index.size_bytes
        if self.cache is not None:
            stats.compile_time = self.cache.compile_seconds
            stats.compiled_graphs = len(self.cache)


def _reject_unbudgetable(
    options: GSimJoinOptions, budget: Optional[VerificationBudget]
) -> None:
    """Registry-driven capability gate for the requested features."""
    validate_backend_options(
        options.verifier, budget=budget, anchor_bound=options.anchor_bound
    )


def execute_self_join(
    graphs: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    budget: Optional[VerificationBudget] = None,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    fault: Optional[FaultPlan] = None,
) -> JoinResult:
    """Self-join: all pairs within edit distance ``tau`` (Algorithm 1).

    The engine-side implementation behind
    :func:`repro.core.join.gsim_join` — see there for the public
    contract.  Index-nested-loop: each graph probes the inverted index
    over the *earlier* graphs' prefixes, verifies its candidates
    through the plan's cascade, then inserts its own prefix.
    """
    if options is None:
        options = GSimJoinOptions()
    validate_collection(graphs, tau, options)
    _reject_unbudgetable(options, budget)

    stats = JoinStatistics(num_graphs=len(graphs), tau=tau, q=options.q)
    result = JoinResult(stats=stats)
    executor = Executor(tau, options, stats, budget=budget)

    started = time.perf_counter()
    profiles, prefixes, labels, _sorter = executor.prepare(graphs)
    executor.build_store(profiles, labels, prefixes)
    stats.index_time += time.perf_counter() - started

    index = InvertedIndex()
    unprunable: List[int] = []
    journal = (
        JoinJournal.open(checkpoint, self_join_meta(graphs, tau, options, budget))
        if checkpoint is not None
        else None
    )
    injector = fault.start() if fault is not None else None

    try:
        for i, profile in enumerate(profiles):
            info = prefixes[i]
            r = profile.graph

            started = time.perf_counter()
            candidate_ids = executor.collect_candidates(
                profile, info, index, unprunable, profiles, i
            )
            stats.candidate_time += time.perf_counter() - started

            started = time.perf_counter()
            fresh = [
                j for j in candidate_ids
                if journal is None or (i, j) not in journal.completed
            ]
            block = (
                executor.batch_prefilter(executor.store_row(i), fresh)
                if executor.batch and fresh
                else None
            )
            block_pos = (
                {j: t for t, j in enumerate(fresh)}
                if block is not None
                else {}
            )
            for j in candidate_ids:
                rec = (
                    journal.completed.get((i, j))
                    if journal is not None
                    else None
                )
                if rec is None:
                    if injector is not None:
                        injector.step()
                    tag = (
                        block.tags[block_pos[j]]
                        if block is not None
                        else None
                    )
                    if tag is not None:
                        outcome = VerifyOutcome(False, tag)
                    else:
                        outcome = executor.verify_candidate(
                            profile, profiles[j], labels[i], labels[j],
                            hinted=(
                                block.hint_for(block_pos[j])
                                if block is not None
                                else None
                            ),
                        )
                    if journal is not None:
                        journal.append(record_of(i, j, outcome))
                    is_result, undecided = outcome.is_result, outcome.undecided
                    lower, upper = outcome.lower, outcome.upper
                else:
                    executor.replay(rec)
                    is_result, undecided = rec.is_result, rec.undecided
                    lower, upper = rec.lower, rec.upper
                if is_result:
                    result.pairs.append((profiles[j].graph.graph_id, r.graph_id))
                elif undecided:
                    result.undecided.append(
                        BoundedPair(
                            profiles[j].graph.graph_id, r.graph_id, lower, upper
                        )
                    )
            stats.verify_time += time.perf_counter() - started

            started = time.perf_counter()
            if info.prunable:
                for key in profile.prefix_keys(info.length):
                    index.add(key, i)
            else:
                unprunable.append(i)
            stats.index_time += time.perf_counter() - started
    finally:
        if journal is not None:
            journal.close()

    executor.finish(result, index)
    return result


def execute_rs_join(
    outer: Sequence[Graph],
    inner: Sequence[Graph],
    tau: int,
    options: Optional[GSimJoinOptions] = None,
    budget: Optional[VerificationBudget] = None,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    fault: Optional[FaultPlan] = None,
) -> JoinResult:
    """R×S join: ``{⟨r, s⟩ | ged(r, s) ≤ τ, r ∈ outer, s ∈ inner}``.

    The engine-side implementation behind
    :func:`repro.core.join.gsim_join_rs` — see there for the public
    contract.  The inner collection is fully indexed first, then each
    outer graph probes; the global q-gram ordering spans both
    collections so prefixes are comparable.  ``checkpoint``/``fault``
    mirror the self-join's journal resume and fault injection; journal
    keys are ``(outer_position, inner_position)``.
    """
    if options is None:
        options = GSimJoinOptions()
    validate_collection(outer, tau, options)
    validate_collection(inner, tau, options)
    _reject_unbudgetable(options, budget)

    stats = JoinStatistics(
        num_graphs=len(outer) + len(inner), tau=tau, q=options.q
    )
    result = JoinResult(stats=stats)
    executor = Executor(tau, options, stats, budget=budget)

    started = time.perf_counter()
    all_graphs = list(outer) + list(inner)
    profiles_all, prefixes_all, labels_all, _sorter = executor.prepare(all_graphs)
    n_outer = len(outer)
    outer_profiles = profiles_all[:n_outer]
    inner_profiles = profiles_all[n_outer:]
    executor.build_store(
        profiles_all, labels_all, prefixes_all, target_base=n_outer
    )

    index = InvertedIndex()
    inner_unprunable: List[int] = []
    for j, profile in enumerate(inner_profiles):
        info = prefixes_all[n_outer + j]
        if info.prunable:
            for key in profile.prefix_keys(info.length):
                index.add(key, j)
        else:
            inner_unprunable.append(j)
    stats.index_time += time.perf_counter() - started

    journal = (
        JoinJournal.open(
            checkpoint, rs_join_meta(outer, inner, tau, options, budget)
        )
        if checkpoint is not None
        else None
    )
    injector = fault.start() if fault is not None else None

    try:
        for i, profile in enumerate(outer_profiles):
            info = prefixes_all[i]
            r = profile.graph

            started = time.perf_counter()
            candidate_ids = executor.collect_candidates(
                profile, info, index, inner_unprunable, inner_profiles,
                len(inner_profiles),
            )
            stats.candidate_time += time.perf_counter() - started

            started = time.perf_counter()
            fresh = [
                j for j in candidate_ids
                if journal is None or (i, j) not in journal.completed
            ]
            block = (
                executor.batch_prefilter(executor.store_row(i), fresh)
                if executor.batch and fresh
                else None
            )
            block_pos = (
                {j: t for t, j in enumerate(fresh)}
                if block is not None
                else {}
            )
            for j in candidate_ids:
                rec = (
                    journal.completed.get((i, j))
                    if journal is not None
                    else None
                )
                if rec is None:
                    if injector is not None:
                        injector.step()
                    tag = (
                        block.tags[block_pos[j]]
                        if block is not None
                        else None
                    )
                    if tag is not None:
                        outcome = VerifyOutcome(False, tag)
                    else:
                        outcome = executor.verify_candidate(
                            profile, inner_profiles[j],
                            labels_all[i], labels_all[n_outer + j],
                            hinted=(
                                block.hint_for(block_pos[j])
                                if block is not None
                                else None
                            ),
                        )
                    if journal is not None:
                        journal.append(record_of(i, j, outcome))
                    is_result, undecided = outcome.is_result, outcome.undecided
                    lower, upper = outcome.lower, outcome.upper
                else:
                    executor.replay(rec)
                    is_result, undecided = rec.is_result, rec.undecided
                    lower, upper = rec.lower, rec.upper
                if is_result:
                    result.pairs.append(
                        (r.graph_id, inner_profiles[j].graph.graph_id)
                    )
                elif undecided:
                    result.undecided.append(
                        BoundedPair(
                            r.graph_id,
                            inner_profiles[j].graph.graph_id,
                            lower,
                            upper,
                        )
                    )
            stats.verify_time += time.perf_counter() - started
    finally:
        if journal is not None:
            journal.close()

    executor.finish(result, index)
    return result
