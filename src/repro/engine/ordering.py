"""Global q-gram ordering by ascending document frequency.

Prefix filtering (Lemma 2) needs every graph's q-gram multiset sorted in
one *global* ordering ``O``.  Rare q-grams make the best prefix members
— their inverted lists are short and they generate few candidates — so
the ordering is ascending document frequency (number of graphs containing
the q-gram), with a deterministic lexicographic tie-break on the key.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.grams.qgrams import Key, QGram, QGramProfile

__all__ = ["QGramOrdering", "build_ordering"]


class QGramOrdering:
    """A global ordering of the q-gram universe.

    Instances are callables mapping a q-gram key to a sortable token;
    unseen keys (possible when ordering was built on a subset, e.g. in
    streaming joins) sort after all seen keys, among themselves by key.
    """

    __slots__ = ("document_frequency",)

    def __init__(self, document_frequency: Dict[Key, int]) -> None:
        self.document_frequency = document_frequency

    def sort_token(self, key: Key) -> Tuple[int, str]:
        """Sortable token: (document frequency, repr of key)."""
        df = self.document_frequency.get(key)
        if df is None:
            # Unknown keys are conservatively treated as frequent.
            return (1 << 60, repr(key))
        return (df, repr(key))

    __call__ = sort_token

    def sort_profile(self, profile: QGramProfile) -> List[QGram]:
        """Return the profile's q-gram instances sorted in this ordering.

        The profile's ``grams`` list is also replaced in place so later
        phases (prefix probing, mismatch extraction) see the sorted view.
        """
        profile.grams.sort(key=lambda gram: self.sort_token(gram.key))
        return profile.grams


def build_ordering(profiles: Iterable[QGramProfile]) -> QGramOrdering:
    """Build the ascending-document-frequency ordering over ``profiles``."""
    df: Dict[Key, int] = {}
    for profile in profiles:
        for key in profile.key_counts:
            df[key] = df.get(key, 0) + 1
    return QGramOrdering(df)
