"""GSimJoin — graph similarity joins with edit distance constraints.

A from-scratch reproduction of *Efficient Graph Similarity Joins with
Edit Distance Constraints* (Zhao, Xiao, Lin, Wang — ICDE 2012).

Quickstart::

    from repro import Graph, GSimJoinOptions, assign_ids, gsim_join

    graphs = assign_ids([...])             # labeled simple graphs
    result = gsim_join(graphs, tau=2, options=GSimJoinOptions.full(q=4))
    for rid, sid in result.pairs:
        print(rid, sid)
    print(result.stats.summary())

Package map:

* :mod:`repro.core` — the public join/search API: ``gsim_join`` and
  friends, plus re-exports of the filter primitives;
* :mod:`repro.engine` — the staged execution engine underneath it:
  explicit join plans of first-class stages, one executor for all four
  entry points, per-stage statistics (``docs/ARCHITECTURE.md``);
* :mod:`repro.graph` — the labeled-graph substrate (type, IO,
  generators, edit operations, isomorphism);
* :mod:`repro.ged` — exact graph edit distance via A* with the paper's
  improved vertex order and heuristic;
* :mod:`repro.matching`, :mod:`repro.setcover` — assignment-problem and
  hitting-set substrates;
* :mod:`repro.runtime` — robustness substrate: verification budgets
  (bounded GED verdicts), the checkpoint/resume journal, and
  deterministic fault injection (``docs/ROBUSTNESS.md``);
* :mod:`repro.baselines` — κ-AT, AppFull and the naive oracle join;
* :mod:`repro.datasets` — seeded AIDS-like / PROTEIN-like workloads and
  the paper's running-example molecules.
"""

from repro.baselines import appfull_join, kat_join, naive_join
from repro.core import (
    BoundedPair,
    GSimIndex,
    GSimJoinOptions,
    JoinResult,
    JoinStatistics,
    StageStatistics,
    extract_qgrams,
    gsim_join,
    gsim_join_parallel,
    gsim_join_rs,
    gsim_join_sharded,
    result_fingerprint,
)
from repro.exceptions import (
    CheckpointError,
    GraphError,
    GraphFormatError,
    ParameterError,
    ReproError,
    SearchExhaustedError,
)
from repro.runtime import FaultPlan, VerificationBudget
from repro.ged import brute_force_ged, ged_within, graph_edit_distance
from repro.graph import (
    Graph,
    are_isomorphic,
    assign_ids,
    collection_statistics,
    load_graphs,
    save_graphs,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "assign_ids",
    "load_graphs",
    "save_graphs",
    "are_isomorphic",
    "collection_statistics",
    "gsim_join",
    "gsim_join_rs",
    "gsim_join_parallel",
    "gsim_join_sharded",
    "result_fingerprint",
    "GSimIndex",
    "GSimJoinOptions",
    "JoinResult",
    "JoinStatistics",
    "StageStatistics",
    "BoundedPair",
    "VerificationBudget",
    "FaultPlan",
    "extract_qgrams",
    "graph_edit_distance",
    "ged_within",
    "brute_force_ged",
    "kat_join",
    "appfull_join",
    "naive_join",
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "ParameterError",
    "SearchExhaustedError",
    "CheckpointError",
    "__version__",
]
