"""Label-preserving graph isomorphism.

Graph edit distance is defined up to isomorphism (``ged(r, s) = 0`` iff
``r`` is isomorphic to ``s``), so the library needs an exact isomorphism
test.  This module implements a VF2-style backtracking search with label
and degree pruning — more than fast enough for the molecule/protein-scale
graphs (tens of vertices) this system targets.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.graph.graph import Graph, Vertex

__all__ = ["are_isomorphic", "find_isomorphism"]


def _signature(g: Graph, v: Vertex):
    """A cheap vertex invariant: label plus sorted incident-edge views.

    For directed graphs the out- and in-neighbourhoods are kept apart so
    that orientation differences break the invariant.
    """
    out = tuple(
        sorted((repr(el), repr(g.vertex_label(u))) for u, el in g.neighbor_items(v))
    )
    if not g.is_directed:
        return (g.vertex_label(v), out)
    incoming = tuple(
        sorted((repr(el), repr(g.vertex_label(u))) for u, el in g.in_neighbor_items(v))
    )
    return (g.vertex_label(v), out, incoming)


def find_isomorphism(r: Graph, s: Graph) -> Optional[Dict[Vertex, Vertex]]:
    """Return a label-preserving isomorphism ``r -> s``, or ``None``.

    The mapping is a bijection ``f`` with ``l_V(u) = l_V(f(u))`` for all
    vertices and ``l_E(u, v) = l_E(f(u), f(v))`` for all edges, per the
    paper's Section II-A definition.
    """
    if r.is_directed != s.is_directed:
        return None
    if r.num_vertices != s.num_vertices or r.num_edges != s.num_edges:
        return None
    if r.vertex_label_multiset() != s.vertex_label_multiset():
        return None
    if r.edge_label_multiset() != s.edge_label_multiset():
        return None

    r_sigs = {v: _signature(r, v) for v in r.vertices()}
    s_sigs = {v: _signature(s, v) for v in s.vertices()}
    if Counter(r_sigs.values()) != Counter(s_sigs.values()):
        return None

    # Candidate targets per r-vertex, rarest-first ordering helps pruning.
    candidates: Dict[Vertex, List[Vertex]] = {
        u: [v for v in s.vertices() if s_sigs[v] == r_sigs[u]] for u in r.vertices()
    }
    # Order r's vertices: fewest candidates first, preferring connectivity
    # to already-ordered vertices (a simple static heuristic).
    order = sorted(r.vertices(), key=lambda u: len(candidates[u]))

    mapping: Dict[Vertex, Vertex] = {}
    used = set()

    def backtrack(i: int) -> bool:
        if i == len(order):
            return True
        u = order[i]
        for v in candidates[u]:
            if v in used:
                continue
            ok = True
            for u2, el in r.neighbor_items(u):
                v2 = mapping.get(u2)
                if v2 is not None and (not s.has_edge(v, v2) or s.edge_label(v, v2) != el):
                    ok = False
                    break
            if ok and r.is_directed:
                for u2, el in r.in_neighbor_items(u):
                    v2 = mapping.get(u2)
                    if v2 is not None and (
                        not s.has_edge(v2, v) or s.edge_label(v2, v) != el
                    ):
                        ok = False
                        break
            if not ok:
                continue
            # Reverse check: edges in s between v and mapped vertices must
            # exist in r (edge counts match, but check keeps pruning tight).
            for v2, el in s.neighbor_items(v):
                if v2 in used:
                    u2 = next(a for a, b in mapping.items() if b == v2)
                    if not r.has_edge(u, u2) or r.edge_label(u, u2) != el:
                        ok = False
                        break
            if ok and s.is_directed:
                for v2, el in s.in_neighbor_items(v):
                    if v2 in used:
                        u2 = next(a for a, b in mapping.items() if b == v2)
                        if not r.has_edge(u2, u) or r.edge_label(u2, u) != el:
                            ok = False
                            break
            if not ok:
                continue
            mapping[u] = v
            used.add(v)
            if backtrack(i + 1):
                return True
            del mapping[u]
            used.remove(v)
        return False

    if backtrack(0):
        return dict(mapping)
    return None


def are_isomorphic(r: Graph, s: Graph) -> bool:
    """True iff ``r`` and ``s`` are label-preserving isomorphic."""
    return find_isomorphism(r, s) is not None
