"""Labeled simple graphs — undirected by default, optionally directed.

This module provides :class:`Graph`, the central data structure of the
library.  It models exactly the graphs of the paper: simple (no
self-loops, no parallel edges), carrying a label on every vertex and on
every edge.  Labels are arbitrary hashable values (chemical datasets use
strings such as ``"C"`` or ``"="``).

Graphs are undirected by default.  Passing ``directed=True`` switches a
graph to directed semantics — the extension the paper notes is
straightforward ("our approach can be easily extended to directed
graphs", footnote 1): edges become ordered pairs (antiparallel edges
are allowed in a simple digraph), paths follow edge direction, and all
core algorithms (q-gram extraction, filtering, A* GED) honour the flag.
The κ-AT and AppFull baselines remain undirected-only, like their
original publications.

The representation is an adjacency dictionary (plus a predecessor
dictionary for directed graphs), giving O(1) expected-time edge
existence tests and label lookups, and O(deg) neighbourhood scans — the
access patterns that dominate q-gram extraction and A* search.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import GraphError

Vertex = Hashable
Label = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = ["Graph", "Vertex", "Label", "Edge", "edge_key"]


def edge_key(u: Vertex, v: Vertex) -> Edge:
    """Return a canonical, order-independent key for the edge ``{u, v}``.

    Vertices need not be mutually comparable, so the canonical order is by
    ``repr`` (stable within a process for the label/vertex types used by
    this library) falling back to the pair itself when reprs tie.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """A labeled simple graph, undirected by default.

    Parameters
    ----------
    graph_id:
        Optional identifier.  Join algorithms require each graph in a
        collection to carry a distinct, orderable id (the paper's
        ``r.id < s.id`` convention); :func:`repro.graph.io.assign_ids`
        can fill these in.
    directed:
        ``True`` for directed semantics; see the module docstring.

    Examples
    --------
    Build cyclopropanone (graph ``r`` of Figure 1 in the paper)::

        >>> r = Graph("cyclopropanone")
        >>> for v, lbl in enumerate(["C", "C", "C", "O"]):
        ...     r.add_vertex(v, lbl)
        >>> r.add_edge(0, 1, "-"); r.add_edge(1, 2, "-"); r.add_edge(0, 2, "-")
        >>> r.add_edge(0, 3, "=")
        >>> r.num_vertices, r.num_edges
        (4, 4)
    """

    __slots__ = ("graph_id", "_labels", "_adj", "_pred", "_num_edges", "_directed")

    def __init__(
        self, graph_id: Optional[Hashable] = None, directed: bool = False
    ) -> None:
        self.graph_id = graph_id
        self._directed = bool(directed)
        self._labels: Dict[Vertex, Label] = {}
        self._adj: Dict[Vertex, Dict[Vertex, Label]] = {}
        # For undirected graphs the predecessor map aliases the adjacency
        # map, so in-/out-/all-neighbour views coincide for free.
        self._pred: Dict[Vertex, Dict[Vertex, Label]] = (
            {} if directed else self._adj
        )
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------
    @property
    def is_directed(self) -> bool:
        """Whether edges are ordered pairs."""
        return self._directed

    def add_vertex(self, v: Vertex, label: Label) -> None:
        """Add vertex ``v`` with the given label.

        Raises
        ------
        GraphError
            If ``v`` is already present.
        """
        if v in self._labels:
            raise GraphError(f"vertex {v!r} already exists")
        self._labels[v] = label
        self._adj[v] = {}
        if self._directed:
            self._pred[v] = {}

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` and all edges incident to it."""
        out = self._require_vertex(v)
        if self._directed:
            incoming = self._pred[v]
            for u in list(out):
                del self._pred[u][v]
            for u in list(incoming):
                del self._adj[u][v]
            self._num_edges -= len(out) + len(incoming)
            del self._pred[v]
        else:
            for u in list(out):
                del self._adj[u][v]
            self._num_edges -= len(out)
        del self._adj[v]
        del self._labels[v]

    def set_vertex_label(self, v: Vertex, label: Label) -> None:
        """Change the label of an existing vertex (a paper edit operation)."""
        self._require_vertex(v)
        self._labels[v] = label

    def add_edge(self, u: Vertex, v: Vertex, label: Label) -> None:
        """Add an edge with the given label.

        For directed graphs the edge is ``u -> v``; the antiparallel
        ``v -> u`` may coexist.

        Raises
        ------
        GraphError
            If either endpoint is missing, if ``u == v`` (self-loop), or
            if the edge already exists (parallel edge).
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        adj_u = self._require_vertex(u)
        self._require_vertex(v)
        if v in adj_u:
            arrow = "->" if self._directed else ","
            raise GraphError(f"edge ({u!r} {arrow} {v!r}) already exists")
        adj_u[v] = label
        if self._directed:
            self._pred[v][u] = label
        else:
            self._adj[v][u] = label
        self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}`` (``u -> v`` when directed)."""
        self._require_edge(u, v)
        del self._adj[u][v]
        if self._directed:
            del self._pred[v][u]
        else:
            del self._adj[v][u]
        self._num_edges -= 1

    def set_edge_label(self, u: Vertex, v: Vertex, label: Label) -> None:
        """Change the label of an existing edge (a paper edit operation)."""
        self._require_edge(u, v)
        self._adj[u][v] = label
        if self._directed:
            self._pred[v][u] = label
        else:
            self._adj[v][u] = label

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices, the paper's ``|V(r)|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edges, the paper's ``|E(r)|``."""
        return self._num_edges

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._labels

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Edge existence; directional (``u -> v``) on directed graphs."""
        adj_u = self._adj.get(u)
        return adj_u is not None and v in adj_u

    def vertex_label(self, v: Vertex) -> Label:
        """The label of vertex ``v``, the paper's ``l_V(v)``."""
        try:
            return self._labels[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} does not exist") from None

    def edge_label(self, u: Vertex, v: Vertex) -> Label:
        """The label of edge ``{u, v}`` (``u -> v`` when directed)."""
        return self._require_edge(u, v)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over vertices in insertion order."""
        return iter(self._labels)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, Label]]:
        """Iterate over edges once each, as ``(u, v, label)`` triples.

        For directed graphs the triple is oriented ``u -> v``.
        """
        if self._directed:
            for u, nbrs in self._adj.items():
                for v, label in nbrs.items():
                    yield (u, v, label)
            return
        seen: Set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v, label in nbrs.items():
                if v not in seen:
                    yield (u, v, label)
            seen.add(u)

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Out-neighbours of ``v`` (all neighbours when undirected)."""
        return iter(self._require_vertex(v))

    def in_neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """In-neighbours of ``v`` (same as :meth:`neighbors` undirected)."""
        self._require_vertex(v)
        return iter(self._pred[v])

    def all_neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Union of in- and out-neighbours, each reported once."""
        out = self._require_vertex(v)
        if not self._directed:
            return iter(out)
        merged = dict(self._pred[v])
        merged.update(out)
        return iter(merged)

    def neighbor_items(self, v: Vertex) -> Iterator[Tuple[Vertex, Label]]:
        """``(out-neighbour, edge label)`` pairs of ``v``."""
        return iter(self._require_vertex(v).items())

    def in_neighbor_items(self, v: Vertex) -> Iterator[Tuple[Vertex, Label]]:
        """``(in-neighbour, edge label)`` pairs of ``v``."""
        self._require_vertex(v)
        return iter(self._pred[v].items())

    def degree(self, v: Vertex) -> int:
        """Total degree: in + out for directed graphs."""
        out = len(self._require_vertex(v))
        if self._directed:
            return out + len(self._pred[v])
        return out

    def out_degree(self, v: Vertex) -> int:
        return len(self._require_vertex(v))

    def in_degree(self, v: Vertex) -> int:
        self._require_vertex(v)
        return len(self._pred[v])

    def max_degree(self) -> int:
        """The maximum (total) vertex degree, the paper's ``γ``."""
        if not self._adj:
            return 0
        return max(self.degree(v) for v in self._labels)

    def canonical_edge(self, u: Vertex, v: Vertex) -> Edge:
        """A key identifying the edge: ordered for directed graphs,
        order-independent otherwise."""
        if self._directed:
            return (u, v)
        return edge_key(u, v)

    def vertex_label_multiset(self) -> Counter:
        """Multiset of vertex labels, the paper's ``L_V(r)``."""
        return Counter(self._labels.values())

    def edge_label_multiset(self) -> Counter:
        """Multiset of edge labels, the paper's ``L_E(r)``."""
        return Counter(label for _, _, label in self.edges())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self, graph_id: Optional[Hashable] = None) -> "Graph":
        """Return a deep copy, optionally with a new id."""
        g = Graph(
            self.graph_id if graph_id is None else graph_id,
            directed=self._directed,
        )
        g._labels = dict(self._labels)
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        if self._directed:
            g._pred = {v: dict(nbrs) for v, nbrs in self._pred.items()}
        else:
            g._pred = g._adj
        g._num_edges = self._num_edges
        return g

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by ``vertices`` (same vertex ids)."""
        keep = set(vertices)
        g = Graph(self.graph_id, directed=self._directed)
        for v in keep:
            g.add_vertex(v, self.vertex_label(v))
        for v in keep:
            for u, label in self._adj[v].items():
                if u in keep and not g.has_edge(v, u):
                    g.add_edge(v, u, label)
        return g

    def relabel_vertices(self, mapping: Dict[Vertex, Vertex]) -> "Graph":
        """Return a copy with vertex ids renamed through ``mapping``.

        Vertices missing from ``mapping`` keep their ids.  The mapping must
        be injective on the vertex set.
        """
        target = {v: mapping.get(v, v) for v in self._labels}
        if len(set(target.values())) != len(target):
            raise GraphError("vertex relabeling mapping is not injective")
        g = Graph(self.graph_id, directed=self._directed)
        for v, label in self._labels.items():
            g.add_vertex(target[v], label)
        for u, v, label in self.edges():
            g.add_edge(target[u], target[v], label)
        return g

    # ------------------------------------------------------------------
    # Traversal (weak connectivity for directed graphs)
    # ------------------------------------------------------------------
    def connected_components(self) -> List[Set[Vertex]]:
        """Vertex sets of the (weakly) connected components."""
        remaining = set(self._labels)
        components: List[Set[Vertex]] = []
        while remaining:
            root = next(iter(remaining))
            component = {root}
            queue = deque([root])
            while queue:
                v = queue.popleft()
                for u in self.all_neighbors(v):
                    if u not in component:
                        component.add(u)
                        queue.append(u)
            components.append(component)
            remaining -= component
        return components

    def spanning_tree_order(
        self, within: Optional[Iterable[Vertex]] = None
    ) -> List[Vertex]:
        """Return vertices in BFS spanning-tree order.

        Used by the paper's Algorithm 7 (DetermineVertexOrder): visiting
        vertices along a spanning tree lets the A* search discover edge
        edit operations as early as possible.  If ``within`` is given, the
        traversal is restricted to (the induced subgraph on) those
        vertices; otherwise all vertices are covered.  Each (weakly)
        connected component contributes a contiguous run.
        """
        allowed = set(self._labels) if within is None else set(within)
        order: List[Vertex] = []
        visited: Set[Vertex] = set()
        # Iterate in insertion order for determinism.
        for root in self._labels:
            if root not in allowed or root in visited:
                continue
            visited.add(root)
            queue = deque([root])
            while queue:
                v = queue.popleft()
                order.append(v)
                for u in self.all_neighbors(v):
                    if u in allowed and u not in visited:
                        visited.add(u)
                        queue.append(u)
        return order

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._labels

    def __eq__(self, other: object) -> bool:
        """Structural identity: same directedness, vertex ids, labels,
        and labeled edges.

        Note this is *not* isomorphism — see
        :func:`repro.graph.isomorphism.are_isomorphic` for that.
        """
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._directed == other._directed
            and self._labels == other._labels
            and self._adj == other._adj
        )

    def __repr__(self) -> str:
        kind = "DiGraph" if self._directed else "Graph"
        return (
            f"{kind}(id={self.graph_id!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _require_vertex(self, v: Vertex) -> Dict[Vertex, Label]:
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} does not exist") from None

    def _require_edge(self, u: Vertex, v: Vertex) -> Label:
        adj_u = self._require_vertex(u)
        self._require_vertex(v)
        try:
            return adj_u[v]
        except KeyError:
            raise GraphError(f"edge {{{u!r}, {v!r}}} does not exist") from None
