"""Enumeration of simple paths — the raw material of path-based q-grams.

A *simple path of length q* is a sequence of ``q + 1`` distinct vertices
connected by ``q`` edges.  A path and its reverse are the same undirected
path; the enumerator reports each exactly once.  Canonicalization into a
label sequence (the actual q-gram) lives in :mod:`repro.grams.qgrams`.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.exceptions import ParameterError
from repro.graph.graph import Graph, Vertex

__all__ = ["simple_paths", "count_simple_paths"]


def simple_paths(g: Graph, q: int) -> Iterator[Tuple[Vertex, ...]]:
    """Yield every simple path of length ``q`` in ``g`` exactly once.

    Paths are yielded as vertex tuples ``(v_0, ..., v_q)``.  For ``q = 0``
    every vertex forms a path by itself (the paper's 0-grams).

    On undirected graphs a path and its reverse are the same object; the
    orientation of each yielded path is fixed by requiring the start
    vertex to precede the end vertex in ``g``'s (deterministic) vertex
    enumeration order, which dedupes the two traversal directions.  On
    directed graphs paths follow edge direction and each directed path
    is inherently enumerated once.

    Raises
    ------
    ParameterError
        If ``q`` is negative.
    """
    if q < 0:
        raise ParameterError(f"path length q must be >= 0, got {q}")
    if q == 0:
        for v in g.vertices():
            yield (v,)
        return

    directed = g.is_directed
    position = {v: i for i, v in enumerate(g.vertices())}
    path: List[Vertex] = []
    on_path = set()

    def extend(v: Vertex) -> Iterator[Tuple[Vertex, ...]]:
        path.append(v)
        on_path.add(v)
        if len(path) == q + 1:
            # Deduplicate the two directions of the same undirected path.
            if directed or position[path[0]] < position[path[-1]]:
                yield tuple(path)
        else:
            for u in g.neighbors(v):
                if u not in on_path:
                    yield from extend(u)
        on_path.remove(v)
        path.pop()

    for start in g.vertices():
        yield from extend(start)


def count_simple_paths(g: Graph, q: int) -> int:
    """Number of simple paths of length ``q`` in ``g`` (the paper's |Q_r|)."""
    return sum(1 for _ in simple_paths(g, q))
