"""Serialization of graph collections.

The on-disk format is the line-oriented text format used by most public
graph-database benchmarks (gSpan / AIDS dumps)::

    t # <graph id>
    v <vertex id> <vertex label>
    e <vertex id> <vertex id> <edge label>

Vertex ids inside a graph are integers; labels are stored verbatim as
strings.  :func:`load_graphs` and :func:`save_graphs` round-trip any
collection produced by this library (labels are read back as strings, so
collections that must round-trip exactly should use string labels).

Interop helpers for ``networkx`` are provided for users who already hold
their data as ``networkx`` graphs; the library itself never requires
networkx.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, Iterator, List, Optional, Sequence, TextIO, Tuple, Union

from repro.exceptions import GraphError, GraphFormatError, ParameterError
from repro.graph.graph import Graph

__all__ = [
    "load_graphs",
    "load_graphs_iter",
    "loads_graphs",
    "save_graphs",
    "dumps_graphs",
    "assign_ids",
    "from_networkx",
    "to_networkx",
]


#: One lenient-mode parse report: ``(lineno, reason)``.
ParseReport = Tuple[int, str]


def _check_on_error(on_error: str) -> None:
    if on_error not in ("raise", "skip"):
        raise ParameterError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}"
        )


def _parse_iter(
    stream: TextIO,
    source: str,
    on_error: str = "raise",
    errors: Optional[List[ParseReport]] = None,
) -> Iterator[Graph]:
    """Yield each *completed* graph of ``stream``, one at a time.

    A graph is complete (and yielded) only once its last record has
    been seen — the next ``t`` line, or end of input — so lenient mode
    can drop a corrupt graph whole without ever having emitted it.
    Only the graph currently being parsed is resident; the stream is
    never materialized.
    """
    _check_on_error(on_error)
    current: Optional[Graph] = None
    skip_graph = False  # swallowing the rest of a dropped graph
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        tag = fields[0]
        reason: Optional[str] = None
        cause: Optional[Exception] = None
        try:
            if tag == "t":
                # "t # <id> [directed]"; the id may be omitted.
                if current is not None:
                    yield current
                gid: Union[int, str, None] = None
                directed = fields[-1] == "directed"
                if len(fields) >= 3 and fields[2] != "directed":
                    gid = int(fields[2]) if fields[2].lstrip("-").isdigit() else fields[2]
                current = Graph(gid, directed=directed)
                skip_graph = False
            elif tag == "v":
                if skip_graph:
                    continue
                if current is None:
                    reason = "'v' before 't'"
                else:
                    vid = int(fields[1])
                    label = " ".join(fields[2:])
                    current.add_vertex(vid, label)
            elif tag == "e":
                if skip_graph:
                    continue
                if current is None:
                    reason = "'e' before 't'"
                else:
                    u, v = int(fields[1]), int(fields[2])
                    label = " ".join(fields[3:])
                    current.add_edge(u, v, label)
            else:
                reason = f"unknown record type {tag!r}"
        except GraphError as exc:
            reason, cause = str(exc), exc
        except (IndexError, ValueError) as exc:
            reason, cause = f"malformed line {line!r}", exc
        if reason is None:
            continue
        if on_error == "raise":
            raise GraphFormatError(f"{source}:{lineno}: {reason}") from cause
        if errors is not None:
            errors.append((lineno, reason))
        # A graph with any corrupt record is dropped whole — a partially
        # loaded graph would silently change join results.  (It was
        # never yielded: graphs are only emitted once complete.)
        if current is not None:
            skip_graph = True
        current = None
    if current is not None:
        yield current


def _parse(
    stream: TextIO,
    source: str,
    on_error: str = "raise",
    errors: Optional[List[ParseReport]] = None,
) -> List[Graph]:
    return list(_parse_iter(stream, source, on_error=on_error, errors=errors))


def load_graphs(
    path: Union[str, os.PathLike],
    on_error: str = "raise",
    errors: Optional[List[ParseReport]] = None,
) -> List[Graph]:
    """Load a graph collection from a text file.

    ``on_error`` selects what happens on malformed input: ``"raise"``
    (the default) aborts with :class:`GraphFormatError`; ``"skip"``
    drops the graph containing the corrupt record — whole, never
    partially — and keeps loading.  In lenient mode each offending line
    is appended to ``errors`` (when given) as a ``(lineno, reason)``
    tuple, so callers can report what was lost.

    Raises
    ------
    GraphFormatError
        With ``on_error="raise"``, on malformed input (unknown record
        type, edge before its graph, non-integer vertex ids, duplicate
        vertices/edges, ...).
    ParameterError
        On an unknown ``on_error`` value.
    """
    with open(path, "r", encoding="utf-8") as f:
        return _parse(f, str(path), on_error=on_error, errors=errors)


def load_graphs_iter(
    path: Union[str, os.PathLike],
    on_error: str = "raise",
    errors: Optional[List[ParseReport]] = None,
) -> Iterator[Graph]:
    """Stream a graph collection from a text file, one graph at a time.

    The lazy sibling of :func:`load_graphs`: graphs are yielded as soon
    as they are complete and only the graph currently being parsed is
    resident, so the out-of-core sharded join can partition collections
    that do not fit in memory.  ``on_error``/``errors`` have exactly
    :func:`load_graphs`'s semantics — ``"skip"`` drops a corrupt graph
    whole (it is never yielded) and reports ``(lineno, reason)`` into
    ``errors``.  The file stays open until the iterator is exhausted or
    closed.

    Raises
    ------
    GraphFormatError
        With ``on_error="raise"``, on malformed input (raised from the
        iterator at the offending line).
    ParameterError
        On an unknown ``on_error`` value (raised immediately).
    """
    _check_on_error(on_error)

    def generate() -> Iterator[Graph]:
        with open(path, "r", encoding="utf-8") as f:
            yield from _parse_iter(f, str(path), on_error=on_error, errors=errors)

    return generate()


def loads_graphs(
    text: str,
    on_error: str = "raise",
    errors: Optional[List[ParseReport]] = None,
) -> List[Graph]:
    """Parse a graph collection from a string (see :func:`load_graphs`)."""
    return _parse(io.StringIO(text), "<string>", on_error=on_error, errors=errors)


def dumps_graphs(graphs: Iterable[Graph]) -> str:
    """Serialize a collection of graphs to the text format."""
    lines: List[str] = []
    for i, g in enumerate(graphs):
        gid = g.graph_id if g.graph_id is not None else i
        suffix = " directed" if g.is_directed else ""
        lines.append(f"t # {gid}{suffix}")
        index = {v: j for j, v in enumerate(g.vertices())}
        for v, j in index.items():
            lines.append(f"v {j} {g.vertex_label(v)}")
        for u, v, label in g.edges():
            a, b = index[u], index[v]
            if not g.is_directed and a > b:
                a, b = b, a
            lines.append(f"e {a} {b} {label}")
    lines.append("")
    return "\n".join(lines)


def save_graphs(graphs: Iterable[Graph], path: Union[str, os.PathLike]) -> None:
    """Write a collection of graphs to ``path`` in the text format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps_graphs(graphs))


def assign_ids(graphs: Sequence[Graph]) -> List[Graph]:
    """Ensure every graph carries a distinct integer id.

    Graphs without an id (or with duplicate ids) get their position in the
    sequence as id.  Returns the same list for chaining; mutation is
    in-place on the ``graph_id`` attribute only.
    """
    seen = set()
    for i, g in enumerate(graphs):
        if g.graph_id is None or g.graph_id in seen:
            g.graph_id = i
        seen.add(g.graph_id)
    return list(graphs)


def from_networkx(nx_graph, graph_id=None, vertex_label="label", edge_label="label") -> Graph:
    """Convert an undirected ``networkx`` graph to a :class:`Graph`.

    Vertex/edge labels are read from the named node/edge attributes;
    missing attributes default to the empty string.
    """
    g = Graph(graph_id)
    for v, data in nx_graph.nodes(data=True):
        g.add_vertex(v, data.get(vertex_label, ""))
    for u, v, data in nx_graph.edges(data=True):
        g.add_edge(u, v, data.get(edge_label, ""))
    return g


def to_networkx(g: Graph, vertex_label="label", edge_label="label"):
    """Convert a :class:`Graph` to an undirected ``networkx.Graph``."""
    import networkx as nx

    out = nx.Graph(graph_id=g.graph_id)
    for v in g.vertices():
        out.add_node(v, **{vertex_label: g.vertex_label(v)})
    for u, v, label in g.edges():
        out.add_edge(u, v, **{edge_label: label})
    return out
