"""Serialization of graph collections.

The on-disk format is the line-oriented text format used by most public
graph-database benchmarks (gSpan / AIDS dumps)::

    t # <graph id>
    v <vertex id> <vertex label>
    e <vertex id> <vertex id> <edge label>

Vertex ids inside a graph are integers; labels are stored verbatim as
strings.  :func:`load_graphs` and :func:`save_graphs` round-trip any
collection produced by this library (labels are read back as strings, so
collections that must round-trip exactly should use string labels).

Interop helpers for ``networkx`` are provided for users who already hold
their data as ``networkx`` graphs; the library itself never requires
networkx.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, List, Sequence, TextIO, Union

from repro.exceptions import GraphError, GraphFormatError
from repro.graph.graph import Graph

__all__ = [
    "load_graphs",
    "loads_graphs",
    "save_graphs",
    "dumps_graphs",
    "assign_ids",
    "from_networkx",
    "to_networkx",
]


def _parse(stream: TextIO, source: str) -> List[Graph]:
    graphs: List[Graph] = []
    current: Graph = None  # type: ignore[assignment]
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        tag = fields[0]
        try:
            if tag == "t":
                # "t # <id> [directed]"; the id may be omitted.
                gid: Union[int, str, None] = None
                directed = fields[-1] == "directed"
                if len(fields) >= 3 and fields[2] != "directed":
                    gid = int(fields[2]) if fields[2].lstrip("-").isdigit() else fields[2]
                current = Graph(gid, directed=directed)
                graphs.append(current)
            elif tag == "v":
                if current is None:
                    raise GraphFormatError(f"{source}:{lineno}: 'v' before 't'")
                vid = int(fields[1])
                label = " ".join(fields[2:])
                current.add_vertex(vid, label)
            elif tag == "e":
                if current is None:
                    raise GraphFormatError(f"{source}:{lineno}: 'e' before 't'")
                u, v = int(fields[1]), int(fields[2])
                label = " ".join(fields[3:])
                current.add_edge(u, v, label)
            else:
                raise GraphFormatError(
                    f"{source}:{lineno}: unknown record type {tag!r}"
                )
        except GraphFormatError:
            raise
        except GraphError as exc:
            raise GraphFormatError(f"{source}:{lineno}: {exc}") from exc
        except (IndexError, ValueError) as exc:
            raise GraphFormatError(f"{source}:{lineno}: malformed line {line!r}") from exc
    return graphs


def load_graphs(path: Union[str, os.PathLike]) -> List[Graph]:
    """Load a graph collection from a text file.

    Raises
    ------
    GraphFormatError
        On malformed input (unknown record type, edge before its graph,
        non-integer vertex ids, duplicate vertices/edges, ...).
    """
    with open(path, "r", encoding="utf-8") as f:
        return _parse(f, str(path))


def loads_graphs(text: str) -> List[Graph]:
    """Parse a graph collection from a string (see :func:`load_graphs`)."""
    return _parse(io.StringIO(text), "<string>")


def dumps_graphs(graphs: Iterable[Graph]) -> str:
    """Serialize a collection of graphs to the text format."""
    lines: List[str] = []
    for i, g in enumerate(graphs):
        gid = g.graph_id if g.graph_id is not None else i
        suffix = " directed" if g.is_directed else ""
        lines.append(f"t # {gid}{suffix}")
        index = {v: j for j, v in enumerate(g.vertices())}
        for v, j in index.items():
            lines.append(f"v {j} {g.vertex_label(v)}")
        for u, v, label in g.edges():
            a, b = index[u], index[v]
            if not g.is_directed and a > b:
                a, b = b, a
            lines.append(f"e {a} {b} {label}")
    lines.append("")
    return "\n".join(lines)


def save_graphs(graphs: Iterable[Graph], path: Union[str, os.PathLike]) -> None:
    """Write a collection of graphs to ``path`` in the text format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps_graphs(graphs))


def assign_ids(graphs: Sequence[Graph]) -> List[Graph]:
    """Ensure every graph carries a distinct integer id.

    Graphs without an id (or with duplicate ids) get their position in the
    sequence as id.  Returns the same list for chaining; mutation is
    in-place on the ``graph_id`` attribute only.
    """
    seen = set()
    for i, g in enumerate(graphs):
        if g.graph_id is None or g.graph_id in seen:
            g.graph_id = i
        seen.add(g.graph_id)
    return list(graphs)


def from_networkx(nx_graph, graph_id=None, vertex_label="label", edge_label="label") -> Graph:
    """Convert an undirected ``networkx`` graph to a :class:`Graph`.

    Vertex/edge labels are read from the named node/edge attributes;
    missing attributes default to the empty string.
    """
    g = Graph(graph_id)
    for v, data in nx_graph.nodes(data=True):
        g.add_vertex(v, data.get(vertex_label, ""))
    for u, v, data in nx_graph.edges(data=True):
        g.add_edge(u, v, data.get(edge_label, ""))
    return g


def to_networkx(g: Graph, vertex_label="label", edge_label="label"):
    """Convert a :class:`Graph` to an undirected ``networkx.Graph``."""
    import networkx as nx

    out = nx.Graph(graph_id=g.graph_id)
    for v in g.vertices():
        out.add_node(v, **{vertex_label: g.vertex_label(v)})
    for u, v, label in g.edges():
        out.add_edge(u, v, **{edge_label: label})
    return out
