"""Graph substrate: data structure, IO, generators, edits, isomorphism."""

from repro.graph.graph import Graph, edge_key
from repro.graph.io import (
    assign_ids,
    dumps_graphs,
    from_networkx,
    load_graphs,
    load_graphs_iter,
    loads_graphs,
    save_graphs,
    to_networkx,
)
from repro.graph.isomorphism import are_isomorphic, find_isomorphism
from repro.graph.operations import (
    EdgeDeletion,
    EdgeInsertion,
    EdgeRelabel,
    EditOperation,
    VertexDeletion,
    VertexInsertion,
    VertexRelabel,
    perturb,
    random_edit,
)
from repro.graph.paths import count_simple_paths, simple_paths
from repro.graph.statistics import CollectionStatistics, collection_statistics

__all__ = [
    "Graph",
    "edge_key",
    "load_graphs",
    "load_graphs_iter",
    "loads_graphs",
    "save_graphs",
    "dumps_graphs",
    "assign_ids",
    "from_networkx",
    "to_networkx",
    "are_isomorphic",
    "find_isomorphism",
    "EditOperation",
    "VertexInsertion",
    "VertexDeletion",
    "VertexRelabel",
    "EdgeInsertion",
    "EdgeDeletion",
    "EdgeRelabel",
    "random_edit",
    "perturb",
    "simple_paths",
    "count_simple_paths",
    "CollectionStatistics",
    "collection_statistics",
]
