"""Dataset-level statistics — the columns of the paper's Table I.

For a collection ``R`` the paper reports: ``|R|``, average ``|V|``,
average ``|E|``, average number of distinct vertex labels per dataset and
distinct edge labels per dataset.  (The Table I columns ``avg |l_V|`` and
``avg |l_E|`` are the alphabet sizes of the datasets: 44/3 for AIDS and
3/2 for PROTEIN, i.e. distinct labels across the whole collection.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graph.graph import Graph

__all__ = ["CollectionStatistics", "collection_statistics"]


@dataclass(frozen=True)
class CollectionStatistics:
    """Summary statistics of a graph collection (Table I row)."""

    num_graphs: int
    avg_vertices: float
    avg_edges: float
    num_vertex_labels: int
    num_edge_labels: int
    max_degree: int
    avg_degree: float

    def as_table_row(self, name: str) -> str:
        """Format like a row of the paper's Table I (plus degree columns)."""
        return (
            f"{name:10s} |R|={self.num_graphs:<6d} avg|V|={self.avg_vertices:<6.1f} "
            f"avg|E|={self.avg_edges:<6.1f} |l_V|={self.num_vertex_labels:<4d} "
            f"|l_E|={self.num_edge_labels:<4d} avg deg={self.avg_degree:.2f} "
            f"max deg={self.max_degree}"
        )


def collection_statistics(graphs: Sequence[Graph]) -> CollectionStatistics:
    """Compute :class:`CollectionStatistics` for ``graphs``.

    An empty collection yields all-zero statistics.
    """
    n = len(graphs)
    if n == 0:
        return CollectionStatistics(0, 0.0, 0.0, 0, 0, 0, 0.0)
    total_v = sum(g.num_vertices for g in graphs)
    total_e = sum(g.num_edges for g in graphs)
    vertex_labels = set()
    edge_labels = set()
    max_degree = 0
    for g in graphs:
        vertex_labels.update(g.vertex_label_multiset())
        edge_labels.update(g.edge_label_multiset())
        max_degree = max(max_degree, g.max_degree())
    return CollectionStatistics(
        num_graphs=n,
        avg_vertices=total_v / n,
        avg_edges=total_e / n,
        num_vertex_labels=len(vertex_labels),
        num_edge_labels=len(edge_labels),
        max_degree=max_degree,
        avg_degree=(2.0 * total_e / total_v) if total_v else 0.0,
    )
