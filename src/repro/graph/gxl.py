"""GXL (Graph eXchange Language) serialization.

The IAM graph repository — the source of the paper's PROTEIN dataset —
distributes graphs as GXL, an XML dialect::

    <gxl><graph id="g1" edgemode="undirected">
      <node id="_0"><attr name="type"><string>helix</string></attr></node>
      <edge from="_0" to="_1"><attr name="type"><string>seq</string></attr></edge>
    </graph></gxl>

This module reads and writes that dialect with the standard library's
``xml.etree`` so users holding IAM data can load it directly.  Each
``<attr>`` value may be a ``<string>``, ``<int>`` or ``<float>``; the
label attribute is selectable by name (defaulting to the first
attribute, or ``""`` when a node/edge carries none).
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from typing import List, Optional, Sequence, Union

from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph

__all__ = ["load_gxl", "loads_gxl", "save_gxl", "dumps_gxl"]

_VALUE_TAGS = {"string": str, "int": int, "float": float, "bool": lambda t: t == "true"}


def _attr_value(attr: ET.Element):
    for child in attr:
        tag = child.tag.split("}")[-1]
        if tag in _VALUE_TAGS:
            text = child.text or ""
            try:
                return _VALUE_TAGS[tag](text.strip())
            except ValueError as exc:
                raise GraphFormatError(f"bad GXL {tag} value {text!r}") from exc
    raise GraphFormatError("GXL <attr> without a recognized value element")


def _label_of(element: ET.Element, attr_name: Optional[str]):
    chosen = None
    for attr in element:
        if attr.tag.split("}")[-1] != "attr":
            continue
        name = attr.get("name")
        if attr_name is None and chosen is None:
            chosen = _attr_value(attr)
        elif attr_name is not None and name == attr_name:
            return _attr_value(attr)
    if attr_name is not None:
        return ""
    return chosen if chosen is not None else ""


def _parse_root(root: ET.Element, vertex_attr, edge_attr) -> List[Graph]:
    graphs: List[Graph] = []
    graph_elements = [
        el for el in root.iter() if el.tag.split("}")[-1] == "graph"
    ]
    if root.tag.split("}")[-1] == "graph":
        graph_elements = [root]
    for graph_el in graph_elements:
        directed = graph_el.get("edgemode", "undirected") in (
            "directed",
            "defaultdirected",
        )
        g = Graph(graph_el.get("id"), directed=directed)
        try:
            for el in graph_el:
                tag = el.tag.split("}")[-1]
                if tag == "node":
                    node_id = el.get("id")
                    if node_id is None:
                        raise GraphFormatError("GXL <node> without id")
                    g.add_vertex(node_id, _label_of(el, vertex_attr))
            for el in graph_el:
                tag = el.tag.split("}")[-1]
                if tag == "edge":
                    u, v = el.get("from"), el.get("to")
                    if u is None or v is None:
                        raise GraphFormatError("GXL <edge> without from/to")
                    g.add_edge(u, v, _label_of(el, edge_attr))
        except GraphFormatError:
            raise
        except Exception as exc:  # malformed structure -> format error
            raise GraphFormatError(f"malformed GXL graph {g.graph_id!r}: {exc}") from exc
        graphs.append(g)
    return graphs


def loads_gxl(
    text: str,
    vertex_attr: Optional[str] = None,
    edge_attr: Optional[str] = None,
) -> List[Graph]:
    """Parse GXL text into a list of graphs.

    ``vertex_attr``/``edge_attr`` name the ``<attr>`` used as the label
    (IAM PROTEIN uses ``"type"`` for both); by default the first
    attribute of each node/edge is used.

    Raises
    ------
    GraphFormatError
        On malformed XML or GXL structure.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise GraphFormatError(f"invalid XML: {exc}") from exc
    return _parse_root(root, vertex_attr, edge_attr)


def load_gxl(
    path: Union[str, os.PathLike],
    vertex_attr: Optional[str] = None,
    edge_attr: Optional[str] = None,
) -> List[Graph]:
    """Load graphs from a GXL file (see :func:`loads_gxl`)."""
    with open(path, "r", encoding="utf-8") as f:
        return loads_gxl(f.read(), vertex_attr, edge_attr)


def _value_element(parent: ET.Element, value) -> None:
    if isinstance(value, bool):
        el = ET.SubElement(parent, "bool")
        el.text = "true" if value else "false"
    elif isinstance(value, int):
        el = ET.SubElement(parent, "int")
        el.text = str(value)
    elif isinstance(value, float):
        el = ET.SubElement(parent, "float")
        el.text = repr(value)
    else:
        el = ET.SubElement(parent, "string")
        el.text = str(value)


def dumps_gxl(
    graphs: Sequence[Graph],
    vertex_attr: str = "label",
    edge_attr: str = "label",
) -> str:
    """Serialize graphs to GXL text (undirected edge mode)."""
    gxl = ET.Element("gxl")
    for i, g in enumerate(graphs):
        gid = str(g.graph_id) if g.graph_id is not None else f"graph_{i}"
        edgemode = "directed" if g.is_directed else "undirected"
        graph_el = ET.SubElement(
            gxl, "graph", id=gid, edgeids="false", edgemode=edgemode
        )
        names = {v: f"_{j}" for j, v in enumerate(g.vertices())}
        for v, name in names.items():
            node = ET.SubElement(graph_el, "node", id=name)
            attr = ET.SubElement(node, "attr", name=vertex_attr)
            _value_element(attr, g.vertex_label(v))
        for u, v, label in g.edges():
            edge = ET.SubElement(
                graph_el, "edge", attrib={"from": names[u], "to": names[v]}
            )
            attr = ET.SubElement(edge, "attr", name=edge_attr)
            _value_element(attr, label)
    return ET.tostring(gxl, encoding="unicode")


def save_gxl(
    graphs: Sequence[Graph],
    path: Union[str, os.PathLike],
    vertex_attr: str = "label",
    edge_attr: str = "label",
) -> None:
    """Write graphs to a GXL file (see :func:`dumps_gxl`)."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps_gxl(graphs, vertex_attr, edge_attr))
