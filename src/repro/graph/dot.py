"""Graphviz DOT export for debugging and documentation.

Renders a :class:`~repro.graph.graph.Graph` as DOT text: vertex labels
become node labels, edge labels become edge labels, and directedness
selects ``digraph``/``graph`` with the matching edge operator.  Only
the standard library is used; feed the output to ``dot -Tpng`` or any
Graphviz viewer.
"""

from __future__ import annotations

import os
from typing import Union

from repro.graph.graph import Graph

__all__ = ["to_dot", "save_dot"]


def _quote(value: object) -> str:
    text = str(value)
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(g: Graph, name: str = None) -> str:
    """Serialize ``g`` to Graphviz DOT text."""
    kind = "digraph" if g.is_directed else "graph"
    arrow = "->" if g.is_directed else "--"
    graph_name = name if name is not None else (
        str(g.graph_id) if g.graph_id is not None else "G"
    )
    lines = [f"{kind} {_quote(graph_name)} {{"]
    index = {v: i for i, v in enumerate(g.vertices())}
    for v, i in index.items():
        lines.append(f"  n{i} [label={_quote(g.vertex_label(v))}];")
    for u, v, label in g.edges():
        lines.append(
            f"  n{index[u]} {arrow} n{index[v]} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_dot(g: Graph, path: Union[str, os.PathLike], name: str = None) -> None:
    """Write ``g`` to a DOT file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(to_dot(g, name=name))
