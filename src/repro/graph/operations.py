"""Graph edit operations.

The paper defines six unit-cost edit operations (Section II-A):

1. insert an isolated vertex,
2. delete an isolated vertex,
3. change the label of a vertex,
4. insert an edge between two disconnected vertices,
5. delete an edge,
6. change the label of an edge.

Each operation is a small immutable object with an :meth:`apply` method
that mutates a graph (after checking the paper's preconditions — e.g. only
*isolated* vertices may be deleted).  On top of these the module offers
:func:`random_edit` and :func:`perturb`, the workhorses of the synthetic
dataset generators and of the property-based tests: by construction,
``ged(g, perturb(g, k)) <= k``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from repro.exceptions import GraphError
from repro.graph.graph import Graph, Label, Vertex

__all__ = [
    "EditOperation",
    "VertexInsertion",
    "VertexDeletion",
    "VertexRelabel",
    "EdgeInsertion",
    "EdgeDeletion",
    "EdgeRelabel",
    "random_edit",
    "perturb",
]


class EditOperation:
    """Base class for the six graph edit operations."""

    def apply(self, g: Graph) -> None:
        """Apply the operation to ``g`` in place.

        Raises
        ------
        GraphError
            If the operation's precondition does not hold on ``g``.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class VertexInsertion(EditOperation):
    """Insert an isolated vertex with the given label."""

    vertex: Vertex
    label: Label

    def apply(self, g: Graph) -> None:
        g.add_vertex(self.vertex, self.label)


@dataclass(frozen=True)
class VertexDeletion(EditOperation):
    """Delete an *isolated* vertex (the paper's precondition)."""

    vertex: Vertex

    def apply(self, g: Graph) -> None:
        if g.degree(self.vertex) != 0:
            raise GraphError(
                f"vertex {self.vertex!r} is not isolated; delete its edges first"
            )
        g.remove_vertex(self.vertex)


@dataclass(frozen=True)
class VertexRelabel(EditOperation):
    """Change the label of a vertex."""

    vertex: Vertex
    label: Label

    def apply(self, g: Graph) -> None:
        g.set_vertex_label(self.vertex, self.label)


@dataclass(frozen=True)
class EdgeInsertion(EditOperation):
    """Insert an edge between two currently disconnected vertices."""

    u: Vertex
    v: Vertex
    label: Label

    def apply(self, g: Graph) -> None:
        g.add_edge(self.u, self.v, self.label)


@dataclass(frozen=True)
class EdgeDeletion(EditOperation):
    """Delete an edge."""

    u: Vertex
    v: Vertex

    def apply(self, g: Graph) -> None:
        g.remove_edge(self.u, self.v)


@dataclass(frozen=True)
class EdgeRelabel(EditOperation):
    """Change the label of an edge."""

    u: Vertex
    v: Vertex
    label: Label

    def apply(self, g: Graph) -> None:
        g.set_edge_label(self.u, self.v, self.label)


def _fresh_vertex(g: Graph) -> int:
    """An integer vertex id not present in ``g``."""
    candidate = g.num_vertices
    while g.has_vertex(candidate):
        candidate += 1
    return candidate


def random_edit(
    g: Graph,
    rng: random.Random,
    vertex_labels: Sequence[Label],
    edge_labels: Sequence[Label],
) -> Optional[EditOperation]:
    """Draw one random edit operation applicable to ``g``.

    The operation kind is sampled uniformly among the kinds currently
    applicable (e.g. vertex deletion is only offered when an isolated
    vertex exists, edge insertion only when some vertex pair is
    disconnected).  Relabel operations always pick a label *different*
    from the current one so the operation is never a no-op.  Returns
    ``None`` only in the degenerate case where no operation applies
    (empty graph with empty label alphabets).
    """
    vertices = list(g.vertices())
    edges = list(g.edges())
    isolated = [v for v in vertices if g.degree(v) == 0]
    n = len(vertices)
    max_edges = n * (n - 1) if g.is_directed else n * (n - 1) // 2
    has_missing_edge = n >= 2 and g.num_edges < max_edges

    kinds: List[str] = []
    if vertex_labels:
        kinds.append("v_ins")
        if len(vertex_labels) > 1 and vertices:
            kinds.append("v_rel")
    if isolated:
        kinds.append("v_del")
    if edge_labels and has_missing_edge:
        kinds.append("e_ins")
    if edges:
        kinds.append("e_del")
        if len(edge_labels) > 1:
            kinds.append("e_rel")
    if not kinds:
        return None

    kind = rng.choice(kinds)
    if kind == "v_ins":
        return VertexInsertion(_fresh_vertex(g), rng.choice(list(vertex_labels)))
    if kind == "v_del":
        return VertexDeletion(rng.choice(isolated))
    if kind == "v_rel":
        v = rng.choice(vertices)
        choices = [l for l in vertex_labels if l != g.vertex_label(v)]
        return VertexRelabel(v, rng.choice(choices))
    if kind == "e_ins":
        while True:
            u, v = rng.sample(vertices, 2)
            if not g.has_edge(u, v):
                return EdgeInsertion(u, v, rng.choice(list(edge_labels)))
    if kind == "e_del":
        u, v, _ = rng.choice(edges)
        return EdgeDeletion(u, v)
    # kind == "e_rel"
    u, v, label = rng.choice(edges)
    choices = [l for l in edge_labels if l != label]
    return EdgeRelabel(u, v, rng.choice(choices))


def perturb(
    g: Graph,
    num_edits: int,
    rng: random.Random,
    vertex_labels: Sequence[Label],
    edge_labels: Sequence[Label],
    graph_id: Optional[Hashable] = None,
) -> Graph:
    """Return a copy of ``g`` with at most ``num_edits`` random edits applied.

    By construction the edit distance between ``g`` and the result is at
    most ``num_edits`` (each step applies one paper edit operation).  The
    actual distance can be smaller if edits cancel out.
    """
    out = g.copy(graph_id=graph_id)
    for _ in range(num_edits):
        op = random_edit(out, rng, vertex_labels, edge_labels)
        if op is None:
            break
        op.apply(out)
    return out
