"""Random generators for single graphs.

Two families are provided, matching the structural profile of the paper's
two evaluation datasets (Table I):

* :func:`random_molecule` — sparse, tree-plus-rings graphs with a skewed
  atom-label distribution (AIDS-like: avg degree ≈ 2.1, 44 vertex labels,
  3 edge labels);
* :func:`random_protein` — denser graphs built as a backbone chain
  (sequence neighbours) plus spatial-proximity edges (PROTEIN-like:
  avg degree ≈ 3.8, 3 vertex labels, 2 edge labels).

Collection-level builders (sampling sizes, planting near-duplicate
clusters so joins have results) live in :mod:`repro.datasets`.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.graph.graph import Graph

__all__ = [
    "ATOM_LABELS",
    "ATOM_WEIGHTS",
    "BOND_LABELS",
    "BOND_WEIGHTS",
    "PROTEIN_VERTEX_LABELS",
    "PROTEIN_EDGE_LABELS",
    "random_molecule",
    "random_protein",
    "random_labeled_graph",
]

#: 44 atom symbols, mirroring the AIDS dataset's vertex-label alphabet.
ATOM_LABELS: Tuple[str, ...] = (
    "C", "N", "O", "S", "P", "F", "Cl", "Br", "I", "B",
    "Si", "Se", "As", "Sn", "Na", "K", "Li", "Ca", "Mg", "Zn",
    "Fe", "Cu", "Mn", "Co", "Ni", "Cr", "Hg", "Pb", "Al", "Ag",
    "Au", "Pt", "Pd", "Ti", "V", "Mo", "W", "Sb", "Bi", "Cd",
    "Ba", "Sr", "Ge", "Te",
)

#: Zipf-like weights: carbon dominates, then N/O/S..., trace metals rare —
#: the skew that makes some q-grams (carbon chains) extremely frequent,
#: which is exactly the phenomenon prefix filtering targets (Section III-C).
ATOM_WEIGHTS: Tuple[float, ...] = tuple(
    w for w in (
        [600.0, 110.0, 100.0, 30.0, 12.0, 10.0, 9.0, 5.0, 3.0, 2.5]
        + [2.0 / (i + 1) for i in range(34)]
    )
)

#: Three bond types, as in AIDS (single/double/aromatic-ish).
BOND_LABELS: Tuple[str, ...] = ("-", "=", ":")
BOND_WEIGHTS: Tuple[float, ...] = (75.0, 15.0, 10.0)

#: Secondary-structure element types of the PROTEIN dataset.
PROTEIN_VERTEX_LABELS: Tuple[str, ...] = ("helix", "sheet", "loop")

#: Edge semantics of the PROTEIN dataset: sequence vs. spatial neighbours.
PROTEIN_EDGE_LABELS: Tuple[str, ...] = ("seq", "space")


def random_molecule(
    rng: random.Random,
    num_vertices: int,
    num_rings: Optional[int] = None,
    vertex_labels: Sequence[Hashable] = ATOM_LABELS,
    vertex_weights: Optional[Sequence[float]] = ATOM_WEIGHTS,
    edge_labels: Sequence[Hashable] = BOND_LABELS,
    edge_weights: Optional[Sequence[float]] = BOND_WEIGHTS,
    max_degree: int = 4,
    graph_id: Optional[Hashable] = None,
) -> Graph:
    """Generate a sparse, molecule-like labeled graph.

    The skeleton is a random tree grown with a degree cap (valence), then
    ``num_rings`` extra edges close rings between nearby tree vertices.
    With the default ``num_rings`` (Poisson-ish around 2) the edge/vertex
    ratio lands near the AIDS dataset's 27.5/25.6.

    Raises
    ------
    ParameterError
        If ``num_vertices < 1`` or ``max_degree < 1``.
    """
    if num_vertices < 1:
        raise ParameterError(f"num_vertices must be >= 1, got {num_vertices}")
    if max_degree < 1:
        raise ParameterError(f"max_degree must be >= 1, got {max_degree}")

    g = Graph(graph_id)
    labels = rng.choices(list(vertex_labels), weights=vertex_weights, k=num_vertices)
    for v, label in enumerate(labels):
        g.add_vertex(v, label)

    def bond() -> Hashable:
        return rng.choices(list(edge_labels), weights=edge_weights, k=1)[0]

    # Random tree with valence cap: attach each new vertex to a uniformly
    # random earlier vertex that still has free valence.
    open_vertices: List[int] = [0]
    for v in range(1, num_vertices):
        parent = rng.choice(open_vertices)
        g.add_edge(parent, v, bond())
        if g.degree(parent) >= max_degree:
            open_vertices.remove(parent)
        if max_degree > 1:
            open_vertices.append(v)
        if not open_vertices:  # degenerate cap; restart pool
            open_vertices = [v]

    if num_rings is None:
        # Mean ~1.9 extra edges => avg |E| ~= |V| + 0.9, near Table I.
        num_rings = min(rng.choice([0, 1, 1, 2, 2, 2, 3, 3, 4]), num_vertices)
    for _ in range(num_rings):
        # Close a short ring: pick a vertex and a non-adjacent vertex at
        # distance two or three if possible; otherwise any non-adjacent.
        for _attempt in range(8):
            u = rng.randrange(num_vertices)
            nbrs = list(g.neighbors(u))
            if not nbrs:
                continue
            w = rng.choice(nbrs)
            second = [x for x in g.neighbors(w) if x != u and not g.has_edge(u, x)]
            if second and g.degree(u) < max_degree:
                x = rng.choice(second)
                if g.degree(x) < max_degree:
                    g.add_edge(u, x, bond())
                    break
    return g


def random_protein(
    rng: random.Random,
    num_vertices: int,
    avg_degree: float = 3.8,
    vertex_labels: Sequence[Hashable] = PROTEIN_VERTEX_LABELS,
    graph_id: Optional[Hashable] = None,
) -> Graph:
    """Generate a dense, protein-like labeled graph.

    Vertices model secondary-structure elements laid out along a folded
    backbone: consecutive elements are joined by ``"seq"`` edges and
    elements that end up spatially close (simulated with coordinates on a
    self-avoiding random walk) by ``"space"`` edges.  The spatial radius
    is tuned so the expected degree matches ``avg_degree`` — PROTEIN's
    62.1 edges over 32.6 vertices gives the default 3.8.
    """
    if num_vertices < 1:
        raise ParameterError(f"num_vertices must be >= 1, got {num_vertices}")

    g = Graph(graph_id)
    # Run lengths: secondary structure comes in stretches of equal type.
    v = 0
    while v < num_vertices:
        label = rng.choice(list(vertex_labels))
        run = min(rng.randint(1, 3), num_vertices - v)
        for _ in range(run):
            g.add_vertex(v, label)
            v += 1

    # Backbone.
    for u in range(num_vertices - 1):
        g.add_edge(u, u + 1, "seq")

    # Fold: a 2-D random walk with small steps keeps far-apart sequence
    # positions spatially close, producing the extra density.
    coords: List[Tuple[float, float]] = []
    x = y = 0.0
    for _ in range(num_vertices):
        coords.append((x, y))
        angle = rng.uniform(0.0, 2.0 * math.pi)
        x += math.cos(angle)
        y += math.sin(angle)

    # Choose a radius giving ~ (avg_degree - 2) / 2 * n spatial edges by
    # rank: sort candidate pairs by distance, keep the closest ones.
    want_spatial = max(0, int(round((avg_degree * num_vertices / 2.0) - (num_vertices - 1))))
    candidates = []
    for a in range(num_vertices):
        ax, ay = coords[a]
        for b in range(a + 2, num_vertices):  # skip backbone neighbours
            bx, by = coords[b]
            candidates.append(((ax - bx) ** 2 + (ay - by) ** 2, a, b))
    candidates.sort()
    for _, a, b in candidates[:want_spatial]:
        g.add_edge(a, b, "space")
    return g


def random_labeled_graph(
    rng: random.Random,
    num_vertices: int,
    num_edges: int,
    vertex_labels: Sequence[Hashable],
    edge_labels: Sequence[Hashable],
    graph_id: Optional[Hashable] = None,
    directed: bool = False,
) -> Graph:
    """Uniform G(n, m)-style labeled graph — used by tests and fuzzing.

    Raises
    ------
    ParameterError
        If ``num_edges`` exceeds the simple-graph maximum
        (``n(n-1)/2`` undirected, ``n(n-1)`` directed).
    """
    max_edges = num_vertices * (num_vertices - 1)
    if not directed:
        max_edges //= 2
    if num_edges > max_edges:
        raise ParameterError(
            f"num_edges={num_edges} exceeds simple-graph maximum {max_edges}"
        )
    g = Graph(graph_id, directed=directed)
    for v in range(num_vertices):
        g.add_vertex(v, rng.choice(list(vertex_labels)))
    added = 0
    while added < num_edges:
        u, v = rng.sample(range(num_vertices), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, rng.choice(list(edge_labels)))
            added += 1
    return g
