"""Result and statistics export.

Join runs produce structured numbers (Cand-1/Cand-2, prune counters,
phase timings) that downstream pipelines want machine-readable.  This
module serializes :class:`~repro.core.result.JoinResult` /
:class:`~repro.core.result.JoinStatistics` to JSON and the result pairs
to CSV, using only the standard library.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import os
from typing import Union

from repro.core.result import JoinResult, JoinStatistics

__all__ = [
    "stats_to_dict",
    "result_to_dict",
    "dumps_result_json",
    "save_result_json",
    "dumps_pairs_csv",
    "save_pairs_csv",
]


def stats_to_dict(stats: JoinStatistics) -> dict:
    """A plain dict of every statistics field plus the derived values.

    The engine's per-stage rows come through under ``"stages"`` — one
    dict per plan stage, in plan order, each with the stage's ``name``,
    ``role``, ``input``/``survivors`` counts, wall-clock ``seconds``
    and the derived ``pruned`` count.
    """
    data = dataclasses.asdict(stats)
    data["total_time"] = stats.total_time
    data["avg_prefix_length"] = stats.avg_prefix_length
    for row, stage in zip(data["stages"], stats.stages):
        row["pruned"] = stage.pruned
    return data


def result_to_dict(result: JoinResult) -> dict:
    """``{"pairs": [...], "undecided": [...], "stats": {...}}``.

    Each ``undecided`` entry carries the pair ids, the best known
    ``lower``/``upper`` GED bounds, and the ``reason`` (``"budget"`` or
    ``"error"``) — see :class:`~repro.core.result.BoundedPair`.
    """
    return {
        "pairs": [list(pair) for pair in result.pairs],
        "undecided": [bp._asdict() for bp in result.undecided],
        "stats": stats_to_dict(result.stats),
    }


def dumps_result_json(result: JoinResult, indent: int = 2) -> str:
    """Serialize a join result to JSON.

    Graph ids must be JSON-representable (int/str — the ids
    :func:`repro.graph.assign_ids` produces always are).
    """
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def save_result_json(result: JoinResult, path: Union[str, os.PathLike]) -> None:
    """Write a join result to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps_result_json(result))


def dumps_pairs_csv(result: JoinResult) -> str:
    """The result pairs as CSV with an ``r_id,s_id`` header."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["r_id", "s_id"])
    for r_id, s_id in result.pairs:
        writer.writerow([r_id, s_id])
    return buffer.getvalue()


def save_pairs_csv(result: JoinResult, path: Union[str, os.PathLike]) -> None:
    """Write the result pairs to a CSV file."""
    with open(path, "w", encoding="utf-8", newline="") as f:
        f.write(dumps_pairs_csv(result))
