"""The Hungarian algorithm for the assignment problem.

An O(n²m) shortest-augmenting-path implementation with dual potentials
(the "e-maxx" formulation).  It is the engine behind the star-structure
GED bounds of the AppFull baseline (Zeng et al., VLDB'09), and is exposed
as a general substrate.  Rectangular instances with more rows than
columns are rejected; pad with a dummy column cost instead (the star
bounds pad with empty stars, giving a square matrix).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import ParameterError

__all__ = ["hungarian", "assignment_cost"]

_INF = float("inf")


def hungarian(cost: Sequence[Sequence[float]]) -> Tuple[List[int], float]:
    """Solve the minimum-cost assignment problem.

    Parameters
    ----------
    cost:
        An ``n x m`` matrix with ``n <= m``; ``cost[i][j]`` is the cost of
        assigning row ``i`` to column ``j``.

    Returns
    -------
    (assignment, total):
        ``assignment[i]`` is the column assigned to row ``i`` (all
        distinct), and ``total`` the minimum total cost.

    Raises
    ------
    ParameterError
        If the matrix is empty, ragged, or has more rows than columns.
    """
    n = len(cost)
    if n == 0:
        return [], 0.0
    m = len(cost[0])
    if any(len(row) != m for row in cost):
        raise ParameterError("cost matrix is ragged")
    if n > m:
        raise ParameterError(f"need rows <= cols, got {n} x {m}")

    # Potentials u (rows), v (cols); p[j] = row matched to column j
    # (1-based with 0 as a virtual root); way[j] = predecessor column on
    # the alternating path.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [_INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = _INF
            j1 = 0
            row = cost[i0 - 1]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = row[j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [-1] * n
    for j in range(1, m + 1):
        if p[j]:
            assignment[p[j] - 1] = j - 1
    total = sum(cost[i][assignment[i]] for i in range(n))
    return assignment, float(total)


def assignment_cost(cost: Sequence[Sequence[float]]) -> float:
    """Minimum total assignment cost (see :func:`hungarian`)."""
    return hungarian(cost)[1]
