"""Assignment-problem substrate: Hungarian algorithm and star bounds."""

from repro.matching.hungarian import assignment_cost, hungarian
from repro.matching.stars import (
    Star,
    mapping_distance,
    star_deletion_cost,
    star_distance,
    star_ged_lower_bound,
    star_multiset,
    star_of,
)

__all__ = [
    "hungarian",
    "assignment_cost",
    "Star",
    "star_of",
    "star_multiset",
    "star_distance",
    "star_deletion_cost",
    "mapping_distance",
    "star_ged_lower_bound",
]
