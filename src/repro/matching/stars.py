"""Star structures and the star-based GED bounds of Zeng et al. (VLDB'09).

A *star* of a vertex is the vertex label together with the multiset of
its neighbours' labels (edge labels are ignored — the paper notes the
released AppFull binary ignores them, and we follow that).  The *mapping
distance* ``μ(r, s)`` is the minimum total star edit distance over
bijections between the two graphs' star multisets (padded with empty
stars), computed with the Hungarian algorithm.  Zeng et al. prove

    ``μ(r, s) / max(4, max_degree + 1)  <=  ged(r, s)``

which is AppFull's filtering lower bound; the assignment's induced vertex
mapping also yields a GED *upper* bound (computed in
:mod:`repro.baselines.appfull` with the exact induced edit cost).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph, Vertex
from repro.matching.hungarian import hungarian

__all__ = [
    "Star",
    "star_of",
    "star_multiset",
    "star_distance",
    "star_deletion_cost",
    "mapping_distance",
    "star_ged_lower_bound",
]

#: A star: (root label, sorted tuple of neighbour labels).
Star = Tuple[object, Tuple[object, ...]]


def star_of(g: Graph, v: Vertex) -> Star:
    """The star structure of vertex ``v`` in ``g``."""
    return (g.vertex_label(v), tuple(sorted(map(repr, (g.vertex_label(u) for u in g.neighbors(v))))))


def star_multiset(g: Graph) -> List[Star]:
    """Stars of all vertices, aligned with ``list(g.vertices())``."""
    return [star_of(g, v) for v in g.vertices()]


def _leaf_mismatch(l1: Tuple[object, ...], l2: Tuple[object, ...]) -> int:
    """``M(L1, L2) = max(|L1|, |L2|) - |L1 ∩ L2|`` on label multisets."""
    c1, c2 = Counter(l1), Counter(l2)
    inter = sum((c1 & c2).values())
    return max(len(l1), len(l2)) - inter


def star_distance(s1: Star, s2: Star) -> int:
    """Star edit distance ``λ(s1, s2) = T(r1, r2) + d(L1, L2)``.

    ``T`` is 0/1 on the root labels; ``d(L1, L2) = ||L1| − |L2|| +
    M(L1, L2)`` compares the neighbour-label multisets.
    """
    (root1, leaves1), (root2, leaves2) = s1, s2
    t = 0 if root1 == root2 else 1
    d = abs(len(leaves1) - len(leaves2)) + _leaf_mismatch(leaves1, leaves2)
    return t + d


def star_deletion_cost(s: Star) -> int:
    """``λ(s, ε)`` against the empty padding star: ``1 + 2·deg``."""
    return 1 + 2 * len(s[1])


def mapping_distance(
    r: Graph, s: Graph
) -> Tuple[float, Dict[Vertex, Optional[Vertex]]]:
    """Mapping distance ``μ(r, s)`` and the optimal star assignment.

    Returns the minimum total star distance over bijections between the
    padded star multisets, and the induced vertex mapping from ``r`` to
    ``s`` (``None`` marks an ``r``-vertex matched to a padding star, i.e.
    a deletion; ``s``-vertices missing from the values are insertions).
    """
    r_vertices = list(r.vertices())
    s_vertices = list(s.vertices())
    r_stars = star_multiset(r)
    s_stars = star_multiset(s)
    n, m = len(r_stars), len(s_stars)
    size = max(n, m)
    if size == 0:
        return 0.0, {}

    # Pad the smaller side with empty stars so the matrix is square.
    cost: List[List[float]] = []
    for i in range(size):
        row: List[float] = []
        for j in range(size):
            if i < n and j < m:
                row.append(star_distance(r_stars[i], s_stars[j]))
            elif i < n:
                row.append(star_deletion_cost(r_stars[i]))
            elif j < m:
                row.append(star_deletion_cost(s_stars[j]))
            else:
                row.append(0.0)
        cost.append(row)

    assignment, mu = hungarian(cost)
    mapping: Dict[Vertex, Optional[Vertex]] = {}
    for i, v in enumerate(r_vertices):
        j = assignment[i]
        mapping[v] = s_vertices[j] if j < m else None
    return mu, mapping


def star_ged_lower_bound(r: Graph, s: Graph, mu: Optional[float] = None) -> int:
    """Zeng et al.'s GED lower bound ``⌈μ / max(4, γ + 1)⌉``.

    ``γ`` is the maximum degree over both graphs.  Pass a precomputed
    ``mu`` to avoid re-running the Hungarian matching.
    """
    if mu is None:
        mu, _ = mapping_distance(r, s)
    denom = max(4, max(r.max_degree(), s.max_degree()) + 1)
    return int(math.ceil(mu / denom - 1e-9))
