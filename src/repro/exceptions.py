"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for invalid graph operations.

    Examples: adding a duplicate vertex, adding an edge whose endpoints do
    not exist, creating a self-loop or a parallel edge, or querying a
    missing vertex/edge.
    """


class GraphFormatError(ReproError):
    """Raised when parsing a graph file that violates the expected format."""


class ParameterError(ReproError):
    """Raised when an algorithm receives an out-of-domain parameter.

    Examples: a negative edit distance threshold, or a negative q-gram
    length.
    """


class SearchExhaustedError(ReproError):
    """Raised when a GED search exhausts its space without reaching a goal.

    For an unbounded search over a finite mapping tree this is provably
    unreachable (mapping every vertex to ε is always a goal), so seeing
    it means the search implementation itself is broken — but it is a
    library error, not a programmer ``AssertionError``, because callers
    deserve a catchable ``ReproError`` even for "impossible" states.
    """


class CheckpointError(ReproError):
    """Raised when a checkpoint journal cannot be used.

    Examples: resuming a join against a journal written by a different
    collection / ``tau`` / ``q`` / options, or a journal whose body is
    corrupt beyond the tolerated torn final line.
    """


class InjectedFaultError(ReproError):
    """Raised by the deterministic fault injector (``repro.runtime.faults``).

    Only ever raised when a test (or chaos run) explicitly arms a
    :class:`~repro.runtime.faults.FaultPlan`; production joins never see
    it.
    """


class MemoryBudgetError(ReproError):
    """Raised when a sharded join's working set exceeds its memory budget.

    The out-of-core driver (``repro.engine.sharded``) treats it as a
    *degradation signal*, not a failure: the offending shard pair is
    retried at a finer split level (smaller sub-shards, less resident
    state) until the budget fits or no further splitting is possible.
    """
