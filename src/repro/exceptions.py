"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for invalid graph operations.

    Examples: adding a duplicate vertex, adding an edge whose endpoints do
    not exist, creating a self-loop or a parallel edge, or querying a
    missing vertex/edge.
    """


class GraphFormatError(ReproError):
    """Raised when parsing a graph file that violates the expected format."""


class ParameterError(ReproError):
    """Raised when an algorithm receives an out-of-domain parameter.

    Examples: a negative edit distance threshold, or a negative q-gram
    length.
    """
