"""Quickstart: find similar molecules with GSimJoin.

Builds the paper's Figure 1 molecules plus a small synthetic collection,
runs a graph similarity self-join, and inspects the result statistics.

Run:  python examples/quickstart.py
"""

from repro import Graph, GSimJoinOptions, assign_ids, graph_edit_distance, gsim_join
from repro.datasets import aids_like, figure1_graphs


def main() -> None:
    # --- 1. Graph edit distance between two molecules -----------------
    r, s = figure1_graphs()  # cyclopropanone vs 2-aminocyclopropanol
    print(f"ged({r.graph_id}, {s.graph_id}) = {graph_edit_distance(r, s)}")

    # --- 2. Build a graph by hand -------------------------------------
    ethanol = Graph("ethanol")
    for v, label in enumerate(["C", "C", "O"]):
        ethanol.add_vertex(v, label)
    ethanol.add_edge(0, 1, "-")
    ethanol.add_edge(1, 2, "-")
    print(f"{ethanol.graph_id}: {ethanol.num_vertices} atoms, "
          f"{ethanol.num_edges} bonds")

    # --- 3. A similarity self-join on a molecule collection -----------
    graphs = aids_like(num_graphs=150, seed=0)
    assign_ids(graphs)

    result = gsim_join(graphs, tau=2, options=GSimJoinOptions.full(q=4))
    print(f"\nJoin found {len(result)} pairs within edit distance 2:")
    for rid, sid in result.pairs[:10]:
        print(f"  graph {rid} ~ graph {sid}")
    if len(result) > 10:
        print(f"  ... and {len(result) - 10} more")

    # --- 4. What did the filters do? -----------------------------------
    st = result.stats
    print(f"\n{st.summary()}")
    print(f"Of {st.num_graphs * (st.num_graphs - 1) // 2} possible pairs, "
          f"only {st.cand1} survived prefix filtering and "
          f"{st.cand2} needed an exact GED computation.")


if __name__ == "__main__":
    main()
