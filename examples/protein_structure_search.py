"""Structure similarity search over a protein database.

Scenario: given a query protein structure graph (secondary-structure
elements connected by sequence/space relations), retrieve all database
structures within a small edit distance — an R×S join with a singleton
outer side, using :func:`repro.gsim_join_rs`.

Also demonstrates persisting and reloading a collection with the
library's text format.

Run:  python examples/protein_structure_search.py
"""

import random
import tempfile
import time
from pathlib import Path

from repro import GSimJoinOptions, assign_ids, gsim_join_rs, load_graphs, save_graphs
from repro.datasets import protein_like
from repro.graph.operations import perturb


def main() -> None:
    # --- Build and persist the database --------------------------------
    database = protein_like(num_graphs=80, seed=23)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "proteins.txt"
        save_graphs(database, path)
        database = assign_ids(load_graphs(path))
        print(f"Database: {len(database)} structures "
              f"(round-tripped through {path.name})")

    # --- Create queries: corrupted copies of known structures ----------
    rng = random.Random(99)
    queries = []
    for i in range(3):
        target = rng.choice(database)
        query = perturb(
            target, rng.randint(1, 2), rng,
            ["helix", "sheet", "loop"], ["seq", "space"],
            graph_id=f"query-{i}",
        )
        queries.append((query, target.graph_id))

    # --- Search ---------------------------------------------------------
    options = GSimJoinOptions.full(q=3)
    for query, expected in queries:
        started = time.perf_counter()
        result = gsim_join_rs([query], database, tau=3, options=options)
        elapsed = time.perf_counter() - started
        matches = [sid for _, sid in result.pairs]
        marker = "HIT " if expected in matches else "miss"
        print(f"\n{query.graph_id} ({query.num_vertices} elements) "
              f"-> {len(matches)} matches in {elapsed:.2f}s [{marker}]")
        for sid in matches[:5]:
            note = "  <- source structure" if sid == expected else ""
            print(f"  structure {sid}{note}")
        st = result.stats
        print(f"  filters: {st.cand1} candidates, {st.cand2} GED calls")


if __name__ == "__main__":
    main()
