"""Finding near-identical versions of *directed* workflow graphs.

The paper notes its approach "can be easily extended to directed
graphs"; this library implements that extension
(``Graph(directed=True)``).  The scenario: a repository of data-pipeline
definitions (tasks = vertices labeled by operator type, edges =
dependencies labeled by channel kind) accumulates slightly-edited copies
of the same pipeline.  A similarity self-join at τ = 2 finds them —
note that reversing a dependency counts as two edit operations (delete +
insert), so orientation genuinely matters.

Run:  python examples/workflow_versions.py
"""

import random

from repro import GSimJoinOptions, assign_ids, graph_edit_distance, gsim_join
from repro.graph.graph import Graph
from repro.graph.operations import perturb

OPERATORS = ["read", "map", "filter", "join", "aggregate", "write"]
CHANNELS = ["stream", "batch"]


def random_pipeline(rng: random.Random, num_tasks: int) -> Graph:
    """A random DAG-ish pipeline: layered tasks with forward edges."""
    g = Graph(directed=True)
    for v in range(num_tasks):
        g.add_vertex(v, rng.choice(OPERATORS))
    for v in range(1, num_tasks):
        # Every task consumes from at least one earlier task.
        u = rng.randrange(v)
        g.add_edge(u, v, rng.choice(CHANNELS))
    extra = rng.randint(0, num_tasks // 2)
    for _ in range(extra):
        u, v = sorted(rng.sample(range(num_tasks), 2))
        if not g.has_edge(u, v):
            g.add_edge(u, v, rng.choice(CHANNELS))
    return g


def main() -> None:
    rng = random.Random(2024)
    repository = []
    for _ in range(40):
        base = random_pipeline(rng, rng.randint(8, 16))
        repository.append(base)
        if rng.random() < 0.5:
            repository.append(perturb(base, rng.randint(1, 2), rng,
                                      OPERATORS, CHANNELS))
    assign_ids(repository)
    print(f"Repository: {len(repository)} directed pipelines")

    result = gsim_join(repository, tau=2, options=GSimJoinOptions.full(q=2))
    print(f"\n{len(result)} near-identical version pairs at tau = 2:")
    by_id = {g.graph_id: g for g in repository}
    for rid, sid in result.pairs[:8]:
        d = graph_edit_distance(by_id[rid], by_id[sid], threshold=2)
        print(f"  pipeline {rid} ~ pipeline {sid} (distance {d})")
    if len(result) > 8:
        print(f"  ... and {len(result) - 8} more")

    # Direction matters: a two-task pipeline and its reversal are 2 apart.
    forward = Graph("fwd", directed=True)
    forward.add_vertex(0, "read"); forward.add_vertex(1, "write")
    forward.add_edge(0, 1, "stream")
    backward = Graph("bwd", directed=True)
    backward.add_vertex(0, "read"); backward.add_vertex(1, "write")
    backward.add_edge(1, 0, "stream")
    print(f"\nged(read->write, write->read) = "
          f"{graph_edit_distance(forward, backward)} (reversal = delete+insert)")

    st = result.stats
    print(f"\n{st.summary()}")


if __name__ == "__main__":
    main()
