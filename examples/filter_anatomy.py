"""Anatomy of the GSimJoin filter cascade, on the paper's own molecules.

Walks the Figure 1 pair (cyclopropanone vs 2-aminocyclopropanol) through
every technique in the paper, printing the intermediate quantities the
running examples quote: q-gram multisets, D_path, count filtering
bounds, minimum-edit prefix lengths, label filtering bounds, and finally
the A* search statistics under each optimization level.

Run:  python examples/filter_anatomy.py
"""

from repro.core import (
    build_ordering,
    compare_qgrams,
    count_lower_bound,
    extract_qgrams,
    global_label_lower_bound,
    local_label_lower_bound,
    min_prefix_length,
)
from repro.datasets import figure1_graphs
from repro.ged import (
    graph_edit_distance_detailed,
    input_vertex_order,
    label_heuristic,
    make_local_label_heuristic,
    mismatch_vertex_order,
    zero_heuristic,
)


def show_profile(name, profile):
    print(f"  Q_{name}: ", end="")
    parts = [
        f"{'-'.join(map(str, key))} (x{count})"
        for key, count in sorted(profile.key_counts.items(), key=repr)
    ]
    print(", ".join(parts))
    print(f"  |Q_{name}| = {profile.size},  D_path({name}) = {profile.d_path}")


def main() -> None:
    r, s = figure1_graphs()
    tau, q = 1, 1
    print(f"Pair: {r.graph_id} vs {s.graph_id},  tau = {tau},  q = {q}\n")

    # --- Path-based q-grams and count filtering (Section III) ----------
    p_r, p_s = extract_qgrams(r, q), extract_qgrams(s, q)
    print("Path-based q-grams (Example 3):")
    show_profile("r", p_r)
    show_profile("s", p_s)
    bound = count_lower_bound(p_r, p_s, tau)
    print(f"\nCount filtering (Example 4): need >= {bound} common q-grams")

    # --- Minimum edit filtering (Section IV) ---------------------------
    ordering = build_ordering([p_r, p_s])
    ordering.sort_profile(p_r)
    ordering.sort_profile(p_s)
    for name, profile in (("r", p_r), ("s", p_s)):
        basic = tau * profile.d_path + 1
        minedit = min_prefix_length(profile.grams, tau, profile.d_path)
        print(f"  prefix of {name}: basic = {basic}, minimum-edit = {minedit}")

    # --- Label filtering (Section V) ------------------------------------
    print(f"\nGlobal label filtering bound: {global_label_lower_bound(r, s)}")
    mismatch = compare_qgrams(p_r, p_s)
    print(f"Mismatching q-grams: {mismatch.epsilon_r} from r, "
          f"{mismatch.epsilon_s} from s")
    local = local_label_lower_bound(
        mismatch.mismatch_s, s, r, tau, required_keys=mismatch.absent_keys_s
    )
    print(f"Local label filtering bound from s's mismatches (Example 8): {local}")

    # --- GED computation (Section VI) -----------------------------------
    print("\nA* search at threshold tau = 3 (the pair's true distance):")
    configs = [
        ("h = 0 (uniform cost)", zero_heuristic, input_vertex_order(r)),
        ("global label h(x)", label_heuristic, input_vertex_order(r)),
        ("+ improved order", label_heuristic, mismatch_vertex_order(r, mismatch.mismatch_r)),
        ("+ improved h(x)", make_local_label_heuristic(q, 3),
         mismatch_vertex_order(r, mismatch.mismatch_r)),
    ]
    for label, heuristic, order in configs:
        res = graph_edit_distance_detailed(
            r, s, threshold=3, heuristic=heuristic, vertex_order=order
        )
        print(f"  {label:24s} distance={res.distance}  "
              f"expanded={res.expanded:4d}  generated={res.generated:4d}")


if __name__ == "__main__":
    main()
