"""Near-duplicate detection in a chemical compound registry.

Scenario (the paper's motivating application): a compound registry
accumulates noisy re-registrations of the same molecule — a mistyped
atom, a missing bond, a wrong bond order.  A graph similarity join with
a small edit distance threshold surfaces the duplicate clusters.

This example:

1. builds a registry with deliberately injected noisy duplicates,
2. joins it at τ = 2 with GSimJoin,
3. clusters the result pairs with a union-find,
4. compares the filter cascade against a naive all-pairs scan.

Run:  python examples/chemical_deduplication.py
"""

import random
import time
from collections import defaultdict

from repro import GSimJoinOptions, assign_ids, gsim_join
from repro.graph.generators import ATOM_LABELS, BOND_LABELS, random_molecule
from repro.graph.operations import perturb


def build_registry(num_compounds: int = 120, seed: int = 11):
    """A registry where ~30% of entries are noisy re-registrations."""
    rng = random.Random(seed)
    registry = []
    truth = {}  # graph position -> original compound index
    for i in range(num_compounds):
        if registry and rng.random() < 0.3:
            # Re-register an existing compound with 1-2 entry errors.
            source = rng.randrange(len(registry))
            noisy = perturb(
                registry[source], rng.randint(1, 2), rng, ATOM_LABELS, BOND_LABELS
            )
            truth[len(registry)] = truth[source]
            registry.append(noisy)
        else:
            compound = random_molecule(rng, rng.randint(12, 30))
            truth[len(registry)] = i
            registry.append(compound)
    return assign_ids(registry), truth


class UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        self.parent[self.find(a)] = self.find(b)


def main() -> None:
    registry, truth = build_registry()
    print(f"Registry: {len(registry)} compounds "
          f"({len(set(truth.values()))} distinct originals)")

    started = time.perf_counter()
    result = gsim_join(registry, tau=2, options=GSimJoinOptions.full(q=4))
    elapsed = time.perf_counter() - started

    # Cluster the similar pairs.
    uf = UnionFind(len(registry))
    for rid, sid in result.pairs:
        uf.union(rid, sid)
    clusters = defaultdict(list)
    for i in range(len(registry)):
        clusters[uf.find(i)].append(i)
    dup_clusters = [members for members in clusters.values() if len(members) > 1]

    print(f"\nFound {len(result)} similar pairs in {elapsed:.2f}s "
          f"-> {len(dup_clusters)} duplicate clusters")
    for members in sorted(dup_clusters, key=len, reverse=True)[:5]:
        print(f"  cluster of {len(members)}: compounds {members}")

    # How well do the clusters recover the injected duplicates?
    recovered = sum(
        1
        for members in dup_clusters
        for a in members
        for b in members
        if a < b and truth[a] == truth[b]
    )
    injected = sum(
        1
        for a in range(len(registry))
        for b in range(a + 1, len(registry))
        if truth[a] == truth[b]
    )
    print(f"\nInjected duplicate pairs recovered at tau=2: "
          f"{recovered}/{injected}")
    print("(Unrecovered pairs accumulated more noise than the threshold.)")

    st = result.stats
    total_pairs = st.num_graphs * (st.num_graphs - 1) // 2
    print(f"\nFilter effectiveness: {total_pairs} pairs -> "
          f"{st.cand1} Cand-1 -> {st.cand2} GED computations "
          f"({st.ged_time:.2f}s in the verifier)")


if __name__ == "__main__":
    main()
