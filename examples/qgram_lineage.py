"""From string joins to graph joins — the q-gram lineage.

GSimJoin ports the q-gram framework of string similarity joins to
graphs.  This example runs both sides of that lineage:

1. a string similarity join over a small dictionary
   (count + prefix + Ed-Join location filtering, banded-DP verify);
2. the corresponding graph similarity join over molecules;
3. the structural difference in mismatch reasoning: the string
   minimum-edit question is a polynomial interval-stabbing problem,
   while the graph version (paper Theorem 2) is an NP-hard hitting set.

Run:  python examples/qgram_lineage.py
"""

from repro import GSimJoinOptions, gsim_join
from repro.core import build_ordering, extract_qgrams, min_edit_exact
from repro.datasets import aids_like, figure1_graphs
from repro.strings import (
    min_edits_destroying,
    positional_qgrams,
    string_join,
)

DICTIONARY = [
    "similarity", "similarly", "similar", "simulator", "simulation",
    "graph", "graphs", "grapheme", "giraffe",
    "edit", "edits", "audit", "editor",
    "join", "joins", "joint", "point",
]


def main() -> None:
    # --- 1. String similarity join --------------------------------------
    pairs, stats = string_join(DICTIONARY, tau=2, q=2)
    print(f"String join (tau=2, q=2): {stats.results} pairs "
          f"from {stats.cand1} candidates "
          f"(avg prefix {stats.avg_prefix_length:.1f} grams)")
    for i, j in pairs:
        print(f"  {DICTIONARY[i]!r} ~ {DICTIONARY[j]!r}")

    # --- 2. Graph similarity join ---------------------------------------
    graphs = aids_like(num_graphs=80, seed=3)
    result = gsim_join(graphs, tau=2, options=GSimJoinOptions.full(q=4))
    print(f"\nGraph join (tau=2, q=4): {result.stats.results} pairs "
          f"from {result.stats.cand1} candidates "
          f"(avg prefix {result.stats.avg_prefix_length:.1f} grams)")

    # --- 3. Why graphs are harder ----------------------------------------
    word = "similarity"
    grams = positional_qgrams(word, 2)
    print(f"\n{word!r} has {len(grams)} positional 2-grams; destroying all "
          f"of them needs exactly {min_edits_destroying(grams, 2)} edits "
          f"(greedy interval stabbing, polynomial).")

    r, _ = figure1_graphs()
    profile = extract_qgrams(r, 1)
    build_ordering([profile]).sort_profile(profile)
    edits = min_edit_exact(profile.grams, cap=5)
    print(f"{r.graph_id!r} has {profile.size} path 1-grams; destroying all "
          f"of them needs {edits} edits (minimum hitting set, NP-hard "
          f"in general - Theorem 2).")
    print("\nPositions are the difference: string q-grams carry them, "
          "graph q-grams cannot.")


if __name__ == "__main__":
    main()
