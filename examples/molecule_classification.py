"""GED-based k-nearest-neighbour classification of molecules.

The paper motivates graph edit distance with classification and
clustering applications in pattern recognition.  This example builds
three synthetic "compound families" (perturbations of three scaffold
molecules), indexes the labeled training set with
:class:`repro.GSimIndex`, and classifies held-out molecules by majority
vote among their k nearest neighbours within an edit distance budget.

Run:  python examples/molecule_classification.py
"""

import random
from collections import Counter

from repro import GSimIndex, GSimJoinOptions
from repro.graph.generators import ATOM_LABELS, BOND_LABELS, random_molecule
from repro.graph.operations import perturb


def build_families(num_families=3, per_family=14, seed=5):
    """Each family: one scaffold + noisy variants within a few edits."""
    rng = random.Random(seed)
    train, test = [], []
    for family in range(num_families):
        scaffold = random_molecule(rng, rng.randint(14, 22))
        members = [scaffold]
        for _ in range(per_family - 1):
            members.append(
                perturb(scaffold, rng.randint(1, 3), rng, ATOM_LABELS, BOND_LABELS)
            )
        rng.shuffle(members)
        split = int(len(members) * 0.75)
        for i, g in enumerate(members[:split]):
            g.graph_id = f"train-{family}-{i}"
            train.append((g, family))
        for i, g in enumerate(members[split:]):
            g.graph_id = f"test-{family}-{i}"
            test.append((g, family))
    return train, test


def main() -> None:
    train, test = build_families()
    print(f"Training set: {len(train)} molecules in 3 families; "
          f"test set: {len(test)}")

    labels = {g.graph_id: family for g, family in train}
    index = GSimIndex(
        [g for g, _ in train], tau_max=4, options=GSimJoinOptions.full(q=4)
    )

    k = 3
    correct = 0
    for g, truth in test:
        neighbours = index.query_top_k(g, k=k)
        if neighbours:
            votes = Counter(labels[gid] for gid, _ in neighbours)
            predicted, _ = votes.most_common(1)[0]
        else:
            predicted = None  # no neighbour within tau_max
        hit = predicted == truth
        correct += hit
        shown = ", ".join(f"{gid}@{d}" for gid, d in neighbours) or "none"
        print(f"  {g.graph_id}: predicted family {predicted} "
              f"[{'ok' if hit else 'MISS'}] (neighbours: {shown})")

    print(f"\n{k}-NN accuracy: {correct}/{len(test)} "
          f"= {correct / len(test):.0%}")


if __name__ == "__main__":
    main()
